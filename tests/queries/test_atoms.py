"""Unit tests for atoms: matching, unification, substitutions."""

import pytest

from repro.errors import QueryArityError
from repro.queries.atoms import (
    Atom,
    apply_substitution,
    atoms_constants,
    atoms_variables,
    compose,
    facts_by_predicate,
    ground_atom,
)
from repro.queries.terms import Constant, Variable


def atom(text_predicate, *args):
    return Atom.of(text_predicate, *args)


class TestAtomBasics:
    def test_of_constructor_coerces_terms(self):
        a = atom("studies", "?x", "Math")
        assert a.args == (Variable("x"), Constant("Math"))

    def test_arity(self):
        assert atom("ENR", "a", "b", "c").arity == 3

    def test_is_ground(self):
        assert atom("R", "a", "b").is_ground()
        assert not atom("R", "?x", "b").is_ground()

    def test_variables_and_constants(self):
        a = atom("R", "?x", "b", "?y")
        assert a.variables() == {Variable("x"), Variable("y")}
        assert a.constants() == {Constant("b")}

    def test_empty_predicate_rejected(self):
        with pytest.raises(ValueError):
            Atom("", (Constant("a"),))

    def test_str_rendering(self):
        assert str(atom("R", "?x", "Rome")) == "R(?x, Rome)"


class TestApply:
    def test_apply_substitution(self):
        a = atom("studies", "?x", "?y")
        result = a.apply({Variable("x"): Constant("A10")})
        assert result == atom("studies", "A10", "?y")

    def test_apply_leaves_constants(self):
        a = atom("studies", "?x", "Math")
        result = a.apply({Variable("x"): Constant("A10"), Variable("z"): Constant("B")})
        assert result == atom("studies", "A10", "Math")


class TestMatchesFact:
    def test_simple_match(self):
        pattern = atom("studies", "?x", "Math")
        fact = atom("studies", "A10", "Math")
        assert pattern.matches_fact(fact) == {Variable("x"): Constant("A10")}

    def test_constant_mismatch(self):
        pattern = atom("studies", "?x", "Math")
        assert pattern.matches_fact(atom("studies", "A10", "Science")) is None

    def test_predicate_mismatch(self):
        assert atom("R", "?x").matches_fact(atom("S", "a")) is None

    def test_repeated_variable_must_agree(self):
        pattern = atom("R", "?x", "?x")
        assert pattern.matches_fact(atom("R", "a", "a")) == {Variable("x"): Constant("a")}
        assert pattern.matches_fact(atom("R", "a", "b")) is None


class TestUnify:
    def test_unify_variables_and_constants(self):
        left = atom("R", "?x", "b")
        right = atom("R", "a", "?y")
        unifier = left.unify(right)
        assert unifier[Variable("x")] == Constant("a")
        assert unifier[Variable("y")] == Constant("b")

    def test_unify_fails_on_conflicting_constants(self):
        assert atom("R", "a", "b").unify(atom("R", "a", "c")) is None

    def test_unify_variable_chains(self):
        left = atom("R", "?x", "?x")
        right = atom("R", "?y", "a")
        unifier = left.unify(right)
        resolved = left.apply(unifier).apply(unifier)
        assert resolved == atom("R", "a", "a")

    def test_unify_different_predicates(self):
        assert atom("R", "?x").unify(atom("S", "?x")) is None


class TestHelpers:
    def test_ground_atom_rejects_variables(self):
        with pytest.raises(QueryArityError):
            ground_atom("R", "?x")

    def test_atoms_variables_and_constants(self):
        atoms = [atom("R", "?x", "a"), atom("S", "?y", "b")]
        assert atoms_variables(atoms) == {Variable("x"), Variable("y")}
        assert atoms_constants(atoms) == {Constant("a"), Constant("b")}

    def test_compose_substitutions(self):
        first = {Variable("x"): Variable("y")}
        second = {Variable("y"): Constant("a")}
        composed = compose(first, second)
        assert composed[Variable("x")] == Constant("a")
        assert composed[Variable("y")] == Constant("a")

    def test_facts_by_predicate(self):
        facts = [atom("R", "a"), atom("R", "b"), atom("S", "c")]
        index = facts_by_predicate(facts)
        assert len(index["R"]) == 2
        assert len(index["S"]) == 1

    def test_apply_substitution_over_sequence(self):
        atoms = (atom("R", "?x"), atom("S", "?x", "?y"))
        result = apply_substitution(atoms, {Variable("x"): Constant("a")})
        assert result == (atom("R", "a"), atom("S", "a", "?y"))

    def test_atom_sorting_with_mixed_terms(self):
        atoms = [atom("R", "?x", 1), atom("R", "a", "?y"), atom("Q", "z")]
        assert sorted(atoms)[0].predicate == "Q"
