"""Unit tests for CQ evaluation (homomorphism search) and the fact index."""

import pytest

from repro.errors import QueryError, UnsafeQueryError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import FactIndex, contains_tuple, evaluate, holds, iter_homomorphisms
from repro.queries.parser import parse_cq
from repro.queries.terms import Constant, Variable

FACTS = [
    Atom.of("studies", "A10", "Math"),
    Atom.of("studies", "B80", "Math"),
    Atom.of("studies", "C12", "Science"),
    Atom.of("taughtIn", "Math", "TV"),
    Atom.of("taughtIn", "Science", "Norm"),
    Atom.of("locatedIn", "TV", "Rome"),
]


class TestEvaluate:
    def test_single_atom_query(self):
        query = parse_cq("q(x) :- studies(x, 'Math')")
        answers = evaluate(query, FACTS)
        assert answers == {(Constant("A10"),), (Constant("B80"),)}

    def test_join_query(self):
        query = parse_cq("q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')")
        answers = evaluate(query, FACTS)
        assert answers == {(Constant("A10"),), (Constant("B80"),)}

    def test_no_answers(self):
        query = parse_cq("q(x) :- studies(x, 'History')")
        assert evaluate(query, FACTS) == set()

    def test_binary_head(self):
        query = parse_cq("q(x, y) :- studies(x, y)")
        answers = evaluate(query, FACTS)
        assert (Constant("C12"), Constant("Science")) in answers
        assert len(answers) == 3

    def test_repeated_variable_join(self):
        facts = [Atom.of("R", "a", "a"), Atom.of("R", "a", "b")]
        query = parse_cq("q(x) :- R(x, x)")
        assert evaluate(query, facts) == {(Constant("a"),)}


class TestHolds:
    def test_boolean_satisfied(self):
        query = parse_cq("q(x) :- locatedIn(x, 'Rome')")
        assert holds(query, FACTS)

    def test_boolean_unsatisfied(self):
        query = parse_cq("q(x) :- locatedIn(x, 'Milan')")
        assert not holds(query, FACTS)


class TestContainsTuple:
    def test_positive_membership(self):
        query = parse_cq("q(x) :- studies(x, y), taughtIn(y, z)")
        assert contains_tuple(query, (Constant("A10"),), FACTS)

    def test_negative_membership(self):
        query = parse_cq("q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')")
        assert not contains_tuple(query, (Constant("C12"),), FACTS)

    def test_wrong_arity_is_false(self):
        query = parse_cq("q(x) :- studies(x, y)")
        assert not contains_tuple(query, (Constant("A10"), Constant("Math")), FACTS)

    def test_unknown_constant_is_false(self):
        query = parse_cq("q(x) :- studies(x, y)")
        assert not contains_tuple(query, (Constant("Z99"),), FACTS)


class TestFactIndex:
    def test_candidates_by_predicate(self):
        index = FactIndex(FACTS)
        assert len(index.candidates(Atom.of("studies", "?x", "?y"))) == 3

    def test_candidates_narrowed_by_constant(self):
        index = FactIndex(FACTS)
        narrowed = index.candidates(Atom.of("studies", "?x", "Math"))
        assert narrowed == {Atom.of("studies", "A10", "Math"), Atom.of("studies", "B80", "Math")}

    def test_candidates_unknown_predicate(self):
        index = FactIndex(FACTS)
        assert index.candidates(Atom.of("unknown", "?x")) == set()

    def test_candidates_unknown_constant(self):
        index = FactIndex(FACTS)
        assert index.candidates(Atom.of("studies", "?x", "History")) == set()

    def test_len_and_contains(self):
        index = FactIndex(FACTS)
        assert len(index) == len(FACTS)
        assert Atom.of("locatedIn", "TV", "Rome") in index

    def test_reuse_across_queries(self):
        index = FactIndex(FACTS)
        q1 = parse_cq("q(x) :- studies(x, 'Math')")
        q2 = parse_cq("q(x) :- studies(x, 'Science')")
        assert len(evaluate(q1, (), index=index)) == 2
        assert len(evaluate(q2, (), index=index)) == 1


class TestIterHomomorphisms:
    def test_number_of_homomorphisms(self):
        query = parse_cq("q(x) :- studies(x, y)")
        homomorphisms = list(iter_homomorphisms(query, FACTS))
        assert len(homomorphisms) == 3

    def test_homomorphism_binds_all_variables(self):
        query = parse_cq("q(x) :- studies(x, y), taughtIn(y, z)")
        for homomorphism in iter_homomorphisms(query, FACTS):
            assert set(homomorphism) >= {Variable("x"), Variable("y"), Variable("z")}


class TestFactIndexImmutability:
    """Regression: candidates() used to alias mutable internal buckets."""

    def test_candidates_returns_frozenset(self):
        index = FactIndex(FACTS)
        bucket = index.candidates(Atom.of("studies", "?x", "?y"))
        assert isinstance(bucket, frozenset)

    def test_caller_cannot_corrupt_the_index(self):
        index = FactIndex(FACTS)
        atom = Atom.of("studies", "?x", "Math")
        bucket = index.candidates(atom)
        with pytest.raises(AttributeError):
            bucket.add(Atom.of("studies", "EVIL", "Math"))  # type: ignore[attr-defined]
        with pytest.raises(AttributeError):
            bucket.clear()  # type: ignore[attr-defined]
        # A derived (mutated) copy must not write through to the index.
        poisoned = set(bucket)
        poisoned.add(Atom.of("studies", "EVIL", "Math"))
        assert index.candidates(atom) == {
            Atom.of("studies", "A10", "Math"),
            Atom.of("studies", "B80", "Math"),
        }
        query = parse_cq("q(x) :- studies(x, 'Math')")
        assert evaluate(query, (), index=index) == {(Constant("A10"),), (Constant("B80"),)}

    def test_facts_view_is_frozen(self):
        index = FactIndex(FACTS)
        assert isinstance(index.facts, frozenset)


def _unsafe_query() -> ConjunctiveQuery:
    """A head variable missing from the body, bypassing the validating
    constructor (simulates queries built by external/legacy code paths)."""
    query = object.__new__(ConjunctiveQuery)
    object.__setattr__(query, "head", (Variable("x"),))
    object.__setattr__(query, "body", (Atom.of("studies", "?y", "Math"),))
    object.__setattr__(query, "name", "unsafe")
    return query


class TestUnsafeQueryEvaluation:
    """Regression: evaluate() used to leak a bare KeyError for unsafe queries."""

    def test_constructor_still_rejects_unsafe_queries(self):
        with pytest.raises(UnsafeQueryError):
            ConjunctiveQuery((Variable("x"),), (Atom.of("studies", "?y", "Math"),))

    def test_evaluate_raises_query_error_not_key_error(self):
        with pytest.raises(QueryError, match="head variables"):
            evaluate(_unsafe_query(), FACTS)

    def test_error_names_the_missing_variable(self):
        with pytest.raises(UnsafeQueryError, match="x"):
            evaluate(_unsafe_query(), FACTS)
