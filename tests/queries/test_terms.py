"""Unit tests for query terms (variables, constants, factories)."""

import pytest

from repro.errors import ReproError
from repro.queries.terms import (
    Constant,
    Variable,
    VariableFactory,
    is_constant,
    is_variable,
    make_term,
)


class TestVariable:
    def test_equality_by_name(self):
        assert Variable("x") == Variable("x")
        assert Variable("x") != Variable("y")

    def test_hashable(self):
        assert len({Variable("x"), Variable("x"), Variable("y")}) == 2

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Variable("")

    def test_str(self):
        assert str(Variable("x")) == "x"


class TestConstant:
    def test_equality_by_value(self):
        assert Constant("Rome") == Constant("Rome")
        assert Constant(1) != Constant("1")

    def test_hashable(self):
        assert len({Constant(1), Constant(1), Constant(2)}) == 2

    def test_str(self):
        assert str(Constant("Rome")) == "Rome"
        assert str(Constant(3)) == "3"

    def test_numeric_and_string_values(self):
        assert Constant(3.5).value == 3.5
        assert Constant(True).value is True


class TestOrdering:
    def test_constants_sort_before_variables(self):
        assert Constant("z") < Variable("a")
        assert not Variable("a") < Constant("z")

    def test_mixed_value_types_sort_deterministically(self):
        values = [Constant("b"), Constant(2), Constant(1), Constant("a")]
        assert sorted(values) == sorted(values)  # no TypeError
        assert sorted(values)[0] in values

    def test_variables_sort_by_name(self):
        assert Variable("a") < Variable("b")


class TestMakeTerm:
    def test_question_mark_prefix_is_variable(self):
        assert make_term("?x") == Variable("x")

    def test_plain_string_is_constant(self):
        assert make_term("Rome") == Constant("Rome")

    def test_existing_terms_pass_through(self):
        variable = Variable("x")
        constant = Constant(5)
        assert make_term(variable) is variable
        assert make_term(constant) is constant

    def test_numbers_become_constants(self):
        assert make_term(7) == Constant(7)


class TestVariableFactory:
    def test_fresh_variables_are_distinct(self):
        factory = VariableFactory()
        generated = {factory.fresh() for _ in range(10)}
        assert len(generated) == 10

    def test_reserved_names_are_skipped(self):
        factory = VariableFactory(reserved=[Variable("_v0"), Variable("_v1")])
        fresh = factory.fresh()
        assert fresh.name not in {"_v0", "_v1"}

    def test_reserve_after_creation(self):
        factory = VariableFactory()
        factory.reserve([Variable("_v0")])
        assert factory.fresh().name != "_v0"

    def test_custom_prefix(self):
        factory = VariableFactory(prefix="z")
        assert factory.fresh().name.startswith("z")
