"""Property-based tests (hypothesis) for the query substrate.

Invariants exercised:

* canonical signatures are invariant under variable renaming and body
  reordering;
* every CQ is contained in (and equivalent to) itself, and containment
  is transitive on random chains built by atom addition;
* evaluation answers are always tuples of constants drawn from the fact
  set, and adding facts never removes answers (monotonicity of CQs).
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.queries.atoms import Atom
from repro.queries.containment import are_equivalent, is_contained_in
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import evaluate
from repro.queries.terms import Constant, Variable

PREDICATES = ["R", "S", "T"]
CONSTANT_VALUES = ["a", "b", "c", "d"]
VARIABLE_NAMES = ["x", "y", "z", "w"]


@st.composite
def ground_atoms(draw):
    predicate = draw(st.sampled_from(PREDICATES))
    first = draw(st.sampled_from(CONSTANT_VALUES))
    second = draw(st.sampled_from(CONSTANT_VALUES))
    return Atom.of(predicate, first, second)


@st.composite
def query_atoms(draw):
    predicate = draw(st.sampled_from(PREDICATES))
    def term(name_pool):
        if draw(st.booleans()):
            return Variable(draw(st.sampled_from(VARIABLE_NAMES)))
        return Constant(draw(st.sampled_from(CONSTANT_VALUES)))
    return Atom(predicate, (term(VARIABLE_NAMES), term(VARIABLE_NAMES)))


@st.composite
def conjunctive_queries(draw):
    """Random safe unary CQs whose answer variable is always x."""
    body_size = draw(st.integers(min_value=1, max_value=3))
    atoms = [draw(query_atoms()) for _ in range(body_size)]
    anchor_predicate = draw(st.sampled_from(PREDICATES))
    other = draw(st.sampled_from(VARIABLE_NAMES))
    atoms.append(Atom(anchor_predicate, (Variable("x"), Variable(other))))
    return ConjunctiveQuery((Variable("x"),), tuple(atoms))


@st.composite
def fact_sets(draw):
    size = draw(st.integers(min_value=0, max_value=12))
    return frozenset(draw(ground_atoms()) for _ in range(size))


@settings(max_examples=60, deadline=None)
@given(conjunctive_queries())
def test_signature_invariant_under_renaming(query):
    renamed = query.rename_apart()
    assert renamed.signature() == query.signature()


@settings(max_examples=60, deadline=None)
@given(conjunctive_queries())
def test_signature_invariant_under_body_reordering(query):
    reordered = query.with_body(tuple(reversed(query.body)))
    assert reordered.signature() == query.signature()


@settings(max_examples=40, deadline=None)
@given(conjunctive_queries())
def test_every_query_contained_in_itself(query):
    assert is_contained_in(query, query)
    assert are_equivalent(query, query)


@settings(max_examples=40, deadline=None)
@given(conjunctive_queries(), query_atoms())
def test_adding_an_atom_specialises(query, atom):
    extended = query.add_atoms((atom,))
    assert is_contained_in(extended, query)


@settings(max_examples=40, deadline=None)
@given(conjunctive_queries(), fact_sets())
def test_answers_are_constant_tuples_from_facts(query, facts):
    answers = evaluate(query, facts)
    domain = set()
    for fact in facts:
        domain |= fact.constants()
    for answer in answers:
        assert len(answer) == query.arity
        for value in answer:
            assert isinstance(value, Constant)
            assert value in domain


@settings(max_examples=40, deadline=None)
@given(conjunctive_queries(), fact_sets(), fact_sets())
def test_evaluation_is_monotone_in_facts(query, facts, more_facts):
    small = evaluate(query, facts)
    large = evaluate(query, facts | more_facts)
    assert small <= large


@settings(max_examples=40, deadline=None)
@given(conjunctive_queries(), fact_sets())
def test_equivalent_queries_have_equal_answers(query, facts):
    renamed = query.rename_apart()
    assert evaluate(query, facts) == evaluate(renamed, facts)
