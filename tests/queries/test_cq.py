"""Unit tests for conjunctive queries."""

import pytest

from repro.errors import QueryArityError, UnsafeQueryError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery, freeze
from repro.queries.parser import parse_cq
from repro.queries.terms import Constant, Variable


def cq(text):
    return parse_cq(text)


class TestConstruction:
    def test_basic_construction(self):
        query = ConjunctiveQuery.of(["?x"], [Atom.of("studies", "?x", "Math")])
        assert query.arity == 1
        assert query.atom_count() == 1

    def test_unsafe_head_rejected(self):
        with pytest.raises(UnsafeQueryError):
            ConjunctiveQuery.of(["?x"], [Atom.of("studies", "?y", "Math")])

    def test_empty_body_rejected(self):
        with pytest.raises(QueryArityError):
            ConjunctiveQuery.of(["?x"], [])

    def test_constant_in_head_rejected(self):
        with pytest.raises(QueryArityError):
            ConjunctiveQuery((Constant("a"),), (Atom.of("R", "a"),))

    def test_boolean_query_allowed(self):
        query = ConjunctiveQuery((), (Atom.of("R", "a"),))
        assert query.is_boolean()


class TestAccessors:
    def test_variables_and_existentials(self):
        query = cq("q(x) :- studies(x, y), taughtIn(y, z)")
        assert query.variables() == {Variable("x"), Variable("y"), Variable("z")}
        assert query.existential_variables() == {Variable("y"), Variable("z")}

    def test_constants_and_predicates(self):
        query = cq("q(x) :- locatedIn(x, 'Rome'), studies(x, y)")
        assert query.constants() == {Constant("Rome")}
        assert query.predicates() == {"locatedIn", "studies"}

    def test_atom_count_matches_delta5(self):
        assert cq("q(x) :- studies(x, 'Math')").atom_count() == 1
        assert cq("q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')").atom_count() == 3


class TestBoundness:
    def test_answer_variable_is_bound(self):
        query = cq("q(x) :- studies(x, y)")
        assert query.is_bound(Variable("x"))

    def test_single_occurrence_existential_is_unbound(self):
        query = cq("q(x) :- studies(x, y)")
        assert not query.is_bound(Variable("y"))

    def test_shared_existential_is_bound(self):
        query = cq("q(x) :- studies(x, y), taughtIn(y, z)")
        assert query.is_bound(Variable("y"))
        assert not query.is_bound(Variable("z"))

    def test_constant_is_bound(self):
        query = cq("q(x) :- studies(x, 'Math')")
        assert query.is_bound(Constant("Math"))


class TestOperations:
    def test_apply_substitution(self):
        query = cq("q(x) :- studies(x, y)")
        substituted = query.apply({Variable("y"): Constant("Math")})
        assert substituted.body[0] == Atom.of("studies", "?x", "Math")

    def test_apply_cannot_bind_answer_variable_to_constant(self):
        query = cq("q(x) :- studies(x, y)")
        with pytest.raises(QueryArityError):
            query.apply({Variable("x"): Constant("A10")})

    def test_apply_cannot_merge_answer_variables(self):
        query = cq("q(x, y) :- studies(x, y)")
        with pytest.raises(QueryArityError):
            query.apply({Variable("x"): Variable("y")})

    def test_add_atoms(self):
        query = cq("q(x) :- studies(x, y)")
        extended = query.add_atoms([Atom.of("taughtIn", "?y", "?z")])
        assert extended.atom_count() == 2

    def test_rename_apart_preserves_structure(self):
        query = cq("q(x) :- studies(x, y), taughtIn(y, z)")
        renamed = query.rename_apart()
        assert renamed.atom_count() == query.atom_count()
        assert renamed.variables().isdisjoint(query.variables()) or renamed.variables() != query.variables()
        assert renamed.signature() == query.signature()


class TestCanonicalForm:
    def test_alpha_equivalent_queries_share_signature(self):
        first = cq("q(x) :- studies(x, y), taughtIn(y, z)")
        second = cq("q(a) :- studies(a, b), taughtIn(b, c)")
        assert first.signature() == second.signature()

    def test_atom_order_does_not_matter(self):
        first = cq("q(x) :- studies(x, y), taughtIn(y, z)")
        second = cq("q(x) :- taughtIn(y, z), studies(x, y)")
        assert first.signature() == second.signature()

    def test_different_queries_differ(self):
        first = cq("q(x) :- studies(x, 'Math')")
        second = cq("q(x) :- studies(x, 'Science')")
        assert first.signature() != second.signature()


class TestFreeze:
    def test_freeze_produces_ground_atoms(self):
        query = cq("q(x) :- studies(x, y), locatedIn(y, 'Rome')")
        frozen_body, frozen_head = freeze(query)
        assert all(atom.is_ground() for atom in frozen_body)
        assert len(frozen_head) == 1

    def test_freeze_keeps_constants(self):
        query = cq("q(x) :- locatedIn(x, 'Rome')")
        frozen_body, _ = freeze(query)
        assert Constant("Rome") in frozen_body[0].constants()
