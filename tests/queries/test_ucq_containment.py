"""Unit tests for UCQs and for CQ/UCQ containment."""

import pytest

from repro.errors import QueryArityError
from repro.queries.atoms import Atom
from repro.queries.containment import (
    are_equivalent,
    core_of,
    deduplicate_queries,
    is_contained_in,
    ucq_are_equivalent,
    ucq_is_contained_in,
)
from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.terms import Constant
from repro.queries.ucq import UnionOfConjunctiveQueries


class TestUCQConstruction:
    def test_mixed_arities_rejected(self):
        q1 = parse_cq("q(x) :- R(x, y)")
        q2 = parse_cq("q(x, y) :- R(x, y)")
        with pytest.raises(QueryArityError):
            UnionOfConjunctiveQueries((q1, q2))

    def test_empty_union_rejected(self):
        with pytest.raises(QueryArityError):
            UnionOfConjunctiveQueries(())

    def test_counts(self):
        ucq = parse_ucq("q(x) :- R(x, y)\nq(x) :- S(x, y), T(y, z)")
        assert ucq.disjunct_count() == 2
        assert ucq.atom_count() == 3

    def test_single_wrapper(self):
        cq = parse_cq("q(x) :- R(x, y)")
        assert UnionOfConjunctiveQueries.single(cq).disjunct_count() == 1


class TestUCQEvaluation:
    FACTS = [
        Atom.of("studies", "A10", "Math"),
        Atom.of("likes", "C12", "Science"),
    ]

    def test_union_of_answers(self):
        ucq = parse_ucq("q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')")
        answers = ucq.evaluate(self.FACTS)
        assert answers == {(Constant("A10"),), (Constant("C12"),)}

    def test_contains_tuple(self):
        ucq = parse_ucq("q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')")
        assert ucq.contains_tuple((Constant("C12"),), self.FACTS)
        assert not ucq.contains_tuple((Constant("Z99"),), self.FACTS)

    def test_deduplicated(self):
        ucq = parse_ucq("q(x) :- studies(x, y)\nq(a) :- studies(a, b)")
        assert ucq.deduplicated().disjunct_count() == 1

    def test_minimized_removes_subsumed_disjunct(self):
        # studies(x,'Math') is contained in studies(x,y): the union collapses.
        ucq = parse_ucq("q(x) :- studies(x, y)\nq(x) :- studies(x, 'Math')")
        assert ucq.minimized().disjunct_count() == 1


class TestCQContainment:
    def test_more_specific_is_contained(self):
        specific = parse_cq("q(x) :- studies(x, 'Math')")
        general = parse_cq("q(x) :- studies(x, y)")
        assert is_contained_in(specific, general)
        assert not is_contained_in(general, specific)

    def test_extra_atom_means_contained(self):
        longer = parse_cq("q(x) :- studies(x, y), taughtIn(y, z)")
        shorter = parse_cq("q(x) :- studies(x, y)")
        assert is_contained_in(longer, shorter)
        assert not is_contained_in(shorter, longer)

    def test_equivalence_up_to_renaming(self):
        first = parse_cq("q(x) :- studies(x, y), taughtIn(y, z)")
        second = parse_cq("q(a) :- taughtIn(b, c), studies(a, b)")
        assert are_equivalent(first, second)

    def test_different_arity_not_contained(self):
        unary = parse_cq("q(x) :- R(x, y)")
        binary = parse_cq("q(x, y) :- R(x, y)")
        assert not is_contained_in(unary, binary)

    def test_redundant_atom_equivalence(self):
        redundant = parse_cq("q(x) :- studies(x, y), studies(x, z)")
        minimal = parse_cq("q(x) :- studies(x, y)")
        assert are_equivalent(redundant, minimal)


class TestCore:
    def test_core_removes_redundant_atom(self):
        redundant = parse_cq("q(x) :- studies(x, y), studies(x, z)")
        assert core_of(redundant).atom_count() == 1

    def test_core_keeps_necessary_atoms(self):
        query = parse_cq("q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')")
        assert core_of(query).atom_count() == 3

    def test_core_is_equivalent(self):
        query = parse_cq("q(x) :- studies(x, y), studies(x, 'Math')")
        assert are_equivalent(core_of(query), query)


class TestUCQContainment:
    def test_subset_union_is_contained(self):
        small = parse_ucq("q(x) :- studies(x, 'Math')")
        big = parse_ucq("q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')")
        assert ucq_is_contained_in(small, big)
        assert not ucq_is_contained_in(big, small)

    def test_equivalence_after_reordering(self):
        first = parse_ucq("q(x) :- R(x, y)\nq(x) :- S(x, y)")
        second = parse_ucq("q(x) :- S(x, y)\nq(x) :- R(x, y)")
        assert ucq_are_equivalent(first, second)


class TestDeduplicateQueries:
    def test_semantic_duplicates_removed(self):
        queries = [
            parse_cq("q(x) :- studies(x, y)"),
            parse_cq("q(a) :- studies(a, b)"),
            parse_cq("q(x) :- studies(x, y), studies(x, z)"),
            parse_cq("q(x) :- likes(x, y)"),
        ]
        unique = deduplicate_queries(queries)
        assert len(unique) == 2
