"""Tests for the domain ontologies and synthetic workload generators."""

import pytest

from repro.core import Labeling, MatchEvaluator, OntologyExplainer
from repro.core.candidates import CandidateConfig
from repro.dl.reasoner import Reasoner
from repro.dl.syntax import AtomicConcept
from repro.ontologies.compas import build_compas_specification, build_compas_system
from repro.ontologies.loans import build_loan_specification, build_loan_system
from repro.ontologies.movies import build_movie_specification, build_movie_system
from repro.ontologies.university import build_university_system
from repro.queries.atoms import Atom
from repro.queries.parser import parse_cq
from repro.workloads import (
    CompasWorkloadConfig,
    LoanWorkloadConfig,
    MovieWorkloadConfig,
    UniversityWorkloadConfig,
    generate_compas_workload,
    generate_loan_workload,
    generate_movie_workload,
    generate_university_workload,
)


class TestLoanDomain:
    def test_specification_builds(self):
        specification = build_loan_specification()
        assert specification.ontology.has_predicate("HighIncomeApplicant")
        assert len(specification.mapping) >= 15

    def test_concept_hierarchy(self):
        reasoner = Reasoner(build_loan_specification().ontology)
        assert reasoner.is_subsumed(
            AtomicConcept("HighIncomeApplicant"), AtomicConcept("Applicant")
        )

    def test_workload_determinism(self):
        first = generate_loan_workload(LoanWorkloadConfig(applicants=30, seed=5))
        second = generate_loan_workload(LoanWorkloadConfig(applicants=30, seed=5))
        assert first.database.facts == second.database.facts
        assert first.dataset.labels == second.dataset.labels

    def test_workload_seed_changes_data(self):
        first = generate_loan_workload(LoanWorkloadConfig(applicants=30, seed=5))
        second = generate_loan_workload(LoanWorkloadConfig(applicants=30, seed=6))
        assert first.database.facts != second.database.facts

    def test_virtual_abox_bands(self):
        workload = generate_loan_workload(LoanWorkloadConfig(applicants=25, seed=5))
        system = build_loan_system(workload.database)
        abox = system.virtual_abox()
        assert any(fact.predicate == "Applicant" for fact in abox)
        assert any(fact.predicate == "appliesFor" for fact in abox)
        # The SQL-based residence mapping must produce residesIn facts.
        assert any(fact.predicate == "residesIn" for fact in abox)

    def test_income_band_concepts_are_consistent(self):
        workload = generate_loan_workload(LoanWorkloadConfig(applicants=25, seed=5))
        system = build_loan_system(workload.database)
        abox = system.virtual_abox()
        high = {f.args[0] for f in abox if f.predicate == "HighIncomeApplicant"}
        low = {f.args[0] for f in abox if f.predicate == "LowIncomeApplicant"}
        assert not (high & low)

    def test_explanation_respects_ground_truth(self):
        workload = generate_loan_workload(LoanWorkloadConfig(applicants=40, seed=7))
        system = build_loan_system(workload.database)
        labeling = workload.dataset.true_labeling()
        explainer = OntologyExplainer(system)
        report = explainer.explain(
            labeling,
            radius=1,
            candidate_config=CandidateConfig(max_atoms=1, max_candidates=100),
            top_k=3,
        )
        # Low income is the dominant rejection reason, so a good 1-atom
        # explanation must avoid matching negatives almost entirely.
        assert report.best.profile.negative_exclusion() >= 0.8


class TestCompasDomain:
    def test_specification_builds(self):
        specification = build_compas_specification()
        assert specification.ontology.has_predicate("belongsToGroup")

    def test_bias_strength_changes_labels(self):
        unbiased = generate_compas_workload(CompasWorkloadConfig(persons=40, seed=3, bias_strength=0.0))
        biased = generate_compas_workload(CompasWorkloadConfig(persons=40, seed=3, bias_strength=1.0))
        assert unbiased.dataset.labels != biased.dataset.labels

    def test_system_and_borders(self):
        workload = generate_compas_workload(CompasWorkloadConfig(persons=20, seed=3))
        system = build_compas_system(workload.database)
        evaluator = MatchEvaluator(system, radius=1)
        query = parse_cq("q(x) :- RepeatOffender(x)")
        labeling = workload.dataset.true_labeling()
        profile = evaluator.profile(query, labeling)
        assert profile.positive_total == len(labeling.positives)


class TestMovieDomain:
    def test_specification_builds(self):
        specification = build_movie_specification()
        assert specification.ontology.has_predicate("likedBy")

    def test_role_inclusion_liked_implies_rated(self):
        workload = generate_movie_workload(MovieWorkloadConfig(movies=20, seed=3))
        system = build_movie_system(workload.database)
        liked = system.certain_answers(parse_cq("q(x, y) :- likedBy(x, y)"))
        rated = system.certain_answers(parse_cq("q(x, y) :- ratedBy(x, y)"))
        assert liked <= rated

    def test_ground_truth_role_chain_explanation(self):
        workload = generate_movie_workload(MovieWorkloadConfig(movies=30, seed=3))
        system = build_movie_system(workload.database)
        labeling = workload.dataset.true_labeling()
        evaluator = MatchEvaluator(system, radius=1)
        query = parse_cq("q(x) :- DramaMovie(x), likedBy(x, y), Critic(y)")
        profile = evaluator.profile(query, labeling)
        # The rule is half of the ground truth, so it must match only positives.
        assert profile.false_positives == 0
        assert profile.true_positives >= 1


class TestUniversityWorkload:
    def test_label_partition(self):
        workload = generate_university_workload(UniversityWorkloadConfig(students=40, seed=1))
        positives = workload.parameters["positives"]
        negatives = workload.parameters["negatives"]
        assert len(positives) + len(negatives) == 40

    def test_ground_truth_query_separates(self):
        workload = generate_university_workload(
            UniversityWorkloadConfig(students=30, enrolments_per_student=1, seed=1)
        )
        system = build_university_system()
        scaled = system.specification
        from repro.obdm.system import OBDMSystem

        scaled_system = OBDMSystem(scaled, workload.database)
        labeling = Labeling(workload.parameters["positives"], workload.parameters["negatives"])
        evaluator = MatchEvaluator(scaled_system, radius=1)
        query = parse_cq("q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')")
        profile = evaluator.profile(query, labeling)
        assert profile.is_perfect_separation()
