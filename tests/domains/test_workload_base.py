"""Unit tests for the shared workload-generator infrastructure."""

import pytest

from repro.workloads.generator import SeededGenerator, Workload, banded
from repro.workloads import (
    MovieWorkloadConfig,
    UniversityWorkloadConfig,
    generate_movie_workload,
    generate_university_workload,
)


class TestSeededGenerator:
    def test_same_seed_same_sequence(self):
        first = SeededGenerator(3)
        second = SeededGenerator(3)
        assert [first.integer(0, 100) for _ in range(5)] == [
            second.integer(0, 100) for _ in range(5)
        ]

    def test_choice_with_probabilities(self):
        generator = SeededGenerator(1)
        values = {generator.choice(["a", "b"], probabilities=(1.0, 0.0)) for _ in range(10)}
        assert values == {"a"}

    def test_integer_bounds_inclusive(self):
        generator = SeededGenerator(2)
        values = {generator.integer(1, 3) for _ in range(100)}
        assert values == {1, 2, 3}

    def test_boolean_probability_extremes(self):
        generator = SeededGenerator(4)
        assert all(generator.boolean(1.0) for _ in range(10))
        assert not any(generator.boolean(0.0) for _ in range(10))

    def test_uniform_and_normal_are_floats(self):
        generator = SeededGenerator(5)
        assert isinstance(generator.uniform(0, 1), float)
        assert isinstance(generator.normal(0, 1), float)


class TestBanded:
    BANDS = (("low", 10.0), ("medium", 20.0), ("high", float("inf")))

    def test_band_boundaries(self):
        assert banded(5, self.BANDS) == "low"
        assert banded(10, self.BANDS) == "low"
        assert banded(15, self.BANDS) == "medium"
        assert banded(1000, self.BANDS) == "high"


class TestWorkloadContainer:
    def test_str_mentions_sizes(self):
        workload = generate_movie_workload(MovieWorkloadConfig(movies=10, seed=1))
        text = str(workload)
        assert "movies" in text and "facts" in text

    def test_university_workload_has_no_dataset(self):
        workload = generate_university_workload(UniversityWorkloadConfig(students=10))
        assert workload.dataset is None
        assert isinstance(workload, Workload)
        assert workload.parameters["students"] == 10
