"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

from dataclasses import dataclass

import pytest

from repro.core import BorderComputer, Labeling, MatchEvaluator, OntologyExplainer
from repro.ontologies.university import (
    build_example_3_3_database,
    build_university_database,
    build_university_labeling,
    build_university_mapping,
    build_university_ontology,
    build_university_schema,
    build_university_specification,
    build_university_system,
    example_queries,
)


@dataclass(frozen=True)
class ScoringPath:
    """One cell of the {legacy, bitset} × {cache on, cache off} matrix.

    ``apply`` flips the two engine-level switches on a *fresh*
    specification (never apply it to the shared session fixtures) and
    returns it, so explainer tests can run the same assertions over all
    four scoring configurations.
    """

    use_bitset: bool
    use_cache: bool

    @property
    def label(self) -> str:
        return (
            f"{'bitset' if self.use_bitset else 'legacy'}-"
            f"{'cache' if self.use_cache else 'nocache'}"
        )

    def apply(self, specification):
        specification.engine.verdicts.enabled = self.use_bitset
        specification.engine.cache.enabled = self.use_cache
        return specification


SCORING_PATHS = tuple(
    ScoringPath(use_bitset=bitset, use_cache=cache)
    for bitset in (True, False)
    for cache in (True, False)
)


@pytest.fixture(params=SCORING_PATHS, ids=lambda path: path.label)
def scoring_path(request) -> ScoringPath:
    """Parametrizes explainer tests over {legacy, bitset} × {cache on, off}."""
    return request.param


@pytest.fixture(scope="session")
def university_system():
    """The OBDM system Σ of Example 3.6 (shared, read-only)."""
    return build_university_system()


@pytest.fixture(scope="session")
def university_labeling():
    """The labeling λ of Example 3.6."""
    return build_university_labeling()


@pytest.fixture(scope="session")
def university_queries():
    """The candidate queries q1, q2, q3 of Example 3.6."""
    return example_queries()


@pytest.fixture(scope="session")
def university_evaluator(university_system):
    """A radius-1 J-matching evaluator over the running example."""
    return MatchEvaluator(university_system, radius=1)


@pytest.fixture(scope="session")
def university_explainer(university_system):
    return OntologyExplainer(university_system)


@pytest.fixture(scope="session")
def example_3_3_database():
    """The abstract database of Example 3.3."""
    return build_example_3_3_database()


@pytest.fixture()
def fresh_university_database():
    """A modifiable copy of the university database."""
    return build_university_database()
