"""Shared fixtures: the paper's running example and small workloads."""

from __future__ import annotations

import pytest

from repro.core import BorderComputer, Labeling, MatchEvaluator, OntologyExplainer
from repro.ontologies.university import (
    build_example_3_3_database,
    build_university_database,
    build_university_labeling,
    build_university_mapping,
    build_university_ontology,
    build_university_schema,
    build_university_specification,
    build_university_system,
    example_queries,
)


@pytest.fixture(scope="session")
def university_system():
    """The OBDM system Σ of Example 3.6 (shared, read-only)."""
    return build_university_system()


@pytest.fixture(scope="session")
def university_labeling():
    """The labeling λ of Example 3.6."""
    return build_university_labeling()


@pytest.fixture(scope="session")
def university_queries():
    """The candidate queries q1, q2, q3 of Example 3.6."""
    return example_queries()


@pytest.fixture(scope="session")
def university_evaluator(university_system):
    """A radius-1 J-matching evaluator over the running example."""
    return MatchEvaluator(university_system, radius=1)


@pytest.fixture(scope="session")
def university_explainer(university_system):
    return OntologyExplainer(university_system)


@pytest.fixture(scope="session")
def example_3_3_database():
    """The abstract database of Example 3.3."""
    return build_example_3_3_database()


@pytest.fixture()
def fresh_university_database():
    """A modifiable copy of the university database."""
    return build_university_database()
