"""Tests for the shared evaluation cache (repro.engine.cache).

The important property is *transparency*: caching must never change a
result, only skip recomputation.  The chase strategy is the acid test —
the seed re-saturated the ABox on every ``is_certain_answer`` call, so
these tests pin the cached engine against a cache-disabled engine across
all four domain ontologies.
"""

from __future__ import annotations

import pytest

from repro.core.labeling import Labeling
from repro.core.matching import MatchEvaluator
from repro.engine import EvaluationCache
from repro.obdm.system import OBDMSystem
from repro.ontologies.compas import build_compas_specification
from repro.ontologies.loans import build_loan_specification
from repro.ontologies.movies import build_movie_specification
from repro.ontologies.university import build_university_database, build_university_specification
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.compas_gen import CompasWorkloadConfig, generate_compas_workload
from repro.workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload
from repro.workloads.movies_gen import MovieWorkloadConfig, generate_movie_workload


# -- small deterministic databases per domain --------------------------------


def _university():
    specification = build_university_specification()
    return specification, build_university_database(specification.schema)


def _compas():
    specification = build_compas_specification()
    database = generate_compas_workload(CompasWorkloadConfig(persons=12, seed=11)).database
    return specification, database


def _loans():
    specification = build_loan_specification()
    database = generate_loan_workload(LoanWorkloadConfig(applicants=12, seed=7)).database
    return specification, database


def _movies():
    specification = build_movie_specification()
    database = generate_movie_workload(
        MovieWorkloadConfig(movies=8, directors=3, viewers=5, critics=2, seed=3)
    ).database
    return specification, database


DOMAIN_BUILDERS = {
    "university": _university,
    "compas": _compas,
    "loans": _loans,
    "movies": _movies,
}


def _chase_system(domain: str, cache_enabled: bool) -> OBDMSystem:
    specification, database = DOMAIN_BUILDERS[domain]()
    chased = specification.with_strategy("chase")
    chased.engine.cache.enabled = cache_enabled
    return OBDMSystem(chased, database, name=f"{domain}_chase")


def _domain_labeling(system: OBDMSystem) -> Labeling:
    constants = sorted(system.domain(), key=repr)[:5]
    return Labeling(positives=constants[:3], negatives=constants[3:5], name="probe")


def _domain_queries(system: OBDMSystem):
    ontology = system.ontology
    queries = [
        ConjunctiveQuery.of(("?x",), (Atom.of(concept, "?x"),), name=f"q_{concept}")
        for concept in sorted(ontology.concept_names)[:3]
    ]
    for role in sorted(ontology.role_names)[:2]:
        queries.append(
            ConjunctiveQuery.of(("?x",), (Atom.of(role, "?x", "?y"),), name=f"q_{role}")
        )
    assert queries, f"no probe queries for {system.name}"
    return queries


# -- chase-strategy correctness across the four domains ----------------------


@pytest.mark.parametrize("domain", sorted(DOMAIN_BUILDERS))
def test_chase_matching_identical_with_and_without_cache(domain):
    cached = _chase_system(domain, cache_enabled=True)
    uncached = _chase_system(domain, cache_enabled=False)
    labeling = _domain_labeling(cached)
    cached_evaluator = MatchEvaluator(cached, radius=1)
    uncached_evaluator = MatchEvaluator(uncached, radius=1)
    for query in _domain_queries(cached):
        cold = cached_evaluator.profile(query, labeling)
        warm = cached_evaluator.profile(query, labeling)
        reference = uncached_evaluator.profile(query, labeling)
        assert cold == reference, f"{domain}: cached profile diverged for {query}"
        assert warm == reference, f"{domain}: warm-cache profile diverged for {query}"
    stats = cached.specification.engine.cache.stats
    assert stats.saturation_hits > 0, f"{domain}: the saturation memo never hit"
    assert stats.match_hits > 0, f"{domain}: the J-match memo never hit"
    # The uncached engine must behave exactly like the seed: every call misses.
    reference_stats = uncached.specification.engine.cache.stats
    assert reference_stats.saturation_hits == 0
    assert reference_stats.match_hits == 0


@pytest.mark.parametrize("domain", sorted(DOMAIN_BUILDERS))
def test_chase_certain_answers_identical_with_and_without_cache(domain):
    cached = _chase_system(domain, cache_enabled=True)
    uncached = _chase_system(domain, cache_enabled=False)
    for query in _domain_queries(cached):
        cold = cached.certain_answers(query)
        warm = cached.certain_answers(query)
        reference = uncached.certain_answers(query)
        assert cold == warm == reference, f"{domain}: certain answers diverged for {query}"


def test_chase_saturates_each_border_once(university_system, university_labeling, university_queries):
    chased = university_system.specification.with_strategy("chase")
    system = OBDMSystem(chased, university_system.database, name="uni_chase")
    evaluator = MatchEvaluator(system, radius=1)
    for query in university_queries.values():
        evaluator.profile(query, university_labeling)
    stats = chased.engine.cache.stats
    borders = len(university_labeling.positives) + len(university_labeling.negatives)
    assert stats.saturation_misses == borders
    assert stats.saturation_hits == borders * (len(university_queries) - 1)


def test_chase_depth_change_invalidates_saturation(university_system):
    """Reconfiguring chase_depth must not serve saturations from the old bound."""
    specification = university_system.specification.with_strategy("chase")
    engine = specification.engine
    abox = specification.retrieve_abox(university_system.database)
    first = engine.saturate(abox)
    assert engine.saturate(abox) is first
    engine.chase_depth += 1
    assert engine.saturate(abox) is not first


# -- unit tests of the memo object itself ------------------------------------


class TestEvaluationCacheUnit:
    @staticmethod
    def _make(enabled=True):
        saturations = []
        rewrites = []

        def saturator(facts):
            saturations.append(facts)
            return facts

        def rewriter(query):
            rewrites.append(query)
            return query

        cache = EvaluationCache(saturator=saturator, rewriter=rewriter, enabled=enabled)
        return cache, saturations, rewrites

    def test_saturation_computed_once(self):
        cache, saturations, _ = self._make()
        facts = frozenset({Atom.of("C", "a"), Atom.of("R", "a", "b")})
        first = cache.saturated_index(facts)
        second = cache.saturated_index(facts)
        assert first is second
        assert len(saturations) == 1

    def test_disabled_cache_recomputes(self):
        cache, saturations, _ = self._make(enabled=False)
        facts = frozenset({Atom.of("C", "a")})
        cache.saturated_index(facts)
        cache.saturated_index(facts)
        assert len(saturations) == 2

    def test_rewriting_keyed_by_signature_not_name(self):
        cache, _, rewrites = self._make()
        from repro.queries.parser import parse_cq

        q1 = parse_cq("q1(x) :- C(x)")
        q2 = parse_cq("other_name(y) :- C(y)")
        cache.rewriting(q1)
        cache.rewriting(q2)
        assert len(rewrites) == 1

    def test_match_memo_caches_false_verdicts(self):
        cache, _, _ = self._make()
        calls = []

        def compute():
            calls.append(1)
            return False

        assert cache.match(("k",), compute) is False
        assert cache.match(("k",), compute) is False
        assert len(calls) == 1

    def test_clear_drops_entries(self):
        cache, saturations, _ = self._make()
        facts = frozenset({Atom.of("C", "a")})
        cache.saturated_index(facts)
        cache.clear()
        cache.saturated_index(facts)
        assert len(saturations) == 2
