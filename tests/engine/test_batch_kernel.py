"""Differential suite for the bit-sliced multi-labeling batch kernel.

Pins three contracts of :mod:`repro.engine.batch_kernel`:

* **bit-exactness** — packing Python-int bitset rows into uint64 word
  matrices, slicing layouts out of global rows and counting δ-masks with
  vectorized popcounts reproduces ``int.bit_count`` arithmetic bit for
  bit;
* **batch = per-labeling = legacy** — rankings served through one
  multi-layout batch dispatch are byte-identical to the PR-5
  per-labeling kernel and to the per-pair legacy path, across all four
  domain ontologies × {thread, process} executors;
* **generator pruning is invisible** — provenance-bound pruning during
  candidate generation/refinement never changes a top-k ranking, and
  the bottom-up cutoff accounting (truncated / unexplored_seeds /
  exhausted) is deterministic and honest.
"""

from __future__ import annotations

import pytest

from repro.core.best_describe import BestDescriptionSearch
from repro.core.candidates import CandidateConfig, CandidateGenerator
from repro.core.explainer import OntologyExplainer
from repro.core.matching import MatchEvaluator
from repro.engine import batch_kernel
from repro.engine.batch_kernel import (
    HAS_NUMPY,
    SPILL_SLAB_ROWS,
    MultiLabelingBatchKernel,
    batch_available,
    gather_packed_spilled,
    masked_popcounts,
    pack_bit_matrix,
    pack_rows,
    unpack_bits,
)
from repro.engine.verdicts import BorderColumns, VerdictMatrix
from repro.errors import ExplanationError
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_labelings,
    probe_pool,
)

pytestmark = [
    pytest.mark.kernel,
    pytest.mark.skipif(not HAS_NUMPY, reason="bit slicing needs numpy"),
]

DOMAINS = PROBE_DOMAINS


# -- bit arithmetic -----------------------------------------------------------


ROWS = [0, 1, (1 << 63) | 1, (1 << 64) - 1, (1 << 100) + (1 << 64) + 5, 1 << 129]


class TestBitSlicing:
    def test_pack_unpack_round_trip(self):
        width = 130
        words = pack_rows(ROWS, width)
        assert words.shape == (len(ROWS), 3)
        bits = unpack_bits(words, width)
        _, ints = pack_bit_matrix(bits)
        assert ints == ROWS

    def test_unpacked_bits_match_int_bits(self):
        width = 130
        bits = unpack_bits(pack_rows(ROWS, width), width)
        for position, row in enumerate(ROWS):
            for bit in range(width):
                assert int(bits[position, bit]) == (row >> bit) & 1

    def test_masked_popcounts_match_bit_count(self):
        width = 130
        words = pack_rows(ROWS, width)
        for mask in (0, 5, (1 << 64) | 3, (1 << width) - 1):
            counts = masked_popcounts(words, mask, width)
            assert [int(count) for count in counts] == [
                (row & mask).bit_count() for row in ROWS
            ]

    def test_zero_width_matrix(self):
        words = pack_rows([0, 0], 0)
        bits = unpack_bits(words, 0)
        assert bits.shape == (2, 0)
        _, ints = pack_bit_matrix(bits)
        assert ints == [0, 0]

    def test_numpy_gate_raises_without_numpy(self, monkeypatch):
        monkeypatch.setattr(batch_kernel, "HAS_NUMPY", False)
        assert batch_available() is False
        with pytest.raises(ExplanationError):
            pack_rows([1], 4)


# -- batch kernel rows vs per-labeling kernel ---------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
def test_single_layout_rows_equal_kernel_rows(domain):
    """A one-layout batch emits exactly the PR-5 kernel's rows."""
    system = build_probe_system(domain, kernel=True)
    labeling = probe_labeling(system)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, labeling)
    batch = MultiLabelingBatchKernel(evaluator, [columns])
    pool = probe_pool(system)
    [layout_rows] = batch.rows_for([pool])
    reference = VerdictMatrix(evaluator, columns)
    reference.build(pool)
    for query, row, counts in zip(pool, layout_rows.rows, layout_rows.counts):
        assert row == reference.row(query)
        assert counts == (
            (row & columns.positives_mask).bit_count(),
            (row & columns.negatives_mask).bit_count(),
        )


@pytest.mark.parametrize("domain", DOMAINS)
def test_multi_layout_rows_equal_per_labeling_builds(domain):
    """Overlapping layouts sliced from one dispatch match separate builds."""
    system = build_probe_system(domain, kernel=True)
    labelings = probe_labelings(system, count=3)
    evaluator = MatchEvaluator(system, radius=1)
    layouts = [BorderColumns.from_labeling(evaluator, lab) for lab in labelings]
    batch = MultiLabelingBatchKernel(evaluator, layouts)
    assert batch.shared_columns() > 0, (
        f"{domain}: shifted-window labelings should share borders"
    )
    pool = probe_pool(system)
    results = batch.rows_for([pool] * len(layouts))
    for columns, layout_rows in zip(layouts, results):
        reference = VerdictMatrix(
            MatchEvaluator(build_probe_system(domain, kernel=True), radius=1), columns
        )
        reference.build(pool)
        assert layout_rows.rows == [reference.row(query) for query in pool]


def test_per_layout_pools_may_differ():
    system = build_probe_system("university", kernel=True)
    labelings = probe_labelings(system, count=2)
    evaluator = MatchEvaluator(system, radius=1)
    layouts = [BorderColumns.from_labeling(evaluator, lab) for lab in labelings]
    batch = MultiLabelingBatchKernel(evaluator, layouts)
    pool = probe_pool(system)
    first, second = batch.rows_for([pool[:2], pool[2:]])
    assert len(first.rows) == 2
    assert len(second.rows) == len(pool) - 2
    assert first.rows == [batch.row_for(0, query) for query in pool[:2]]
    assert second.rows == [batch.row_for(1, query) for query in pool[2:]]


def test_pool_count_mismatch_rejected():
    system = build_probe_system("university", kernel=True)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, probe_labeling(system))
    batch = MultiLabelingBatchKernel(evaluator, [columns])
    with pytest.raises(ExplanationError):
        batch.rows_for([[], []])


def test_upper_bound_for_is_superset_of_row():
    system = build_probe_system("loans", kernel=True)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, probe_labeling(system))
    batch = MultiLabelingBatchKernel(evaluator, [columns])
    for query in probe_pool(system):
        row = batch.row_for(0, query)
        bound = batch.upper_bound_for(0, query)
        assert row & bound == row


def test_batch_dispatch_counters():
    system = build_probe_system("university", kernel=True)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, probe_labeling(system))
    batch = MultiLabelingBatchKernel(evaluator, [columns])
    pool = probe_pool(system)
    stats = system.specification.engine.cache.stats
    before = stats.as_dict()
    batch.rows_for([pool])
    delta = stats.delta_since(before)
    assert delta.get("batch_dispatches") == 1
    assert delta.get("batch_rows") == len(pool)


# -- end-to-end differential: batch = kernel = legacy -------------------------


def _reference_reports(domain):
    system = build_probe_system(domain, kernel=False)
    pool = probe_pool(system)
    return [
        OntologyExplainer(system).explain(labeling, candidates=pool, top_k=None)
        for labeling in probe_labelings(system, count=2)
    ]


@pytest.mark.parametrize("domain", DOMAINS)
def test_batched_explain_identical_to_legacy_thread(domain):
    """Thread-path explain_batch (one bit-sliced dispatch) vs legacy."""
    references = _reference_reports(domain)
    system = build_probe_system(domain, kernel=True)
    reports = OntologyExplainer(system).explain_batch(
        probe_labelings(system, count=2),
        candidates=probe_pool(system),
        executor="thread",
        max_workers=2,
        top_k=None,
    )
    for report, reference in zip(reports, references):
        assert report.render(top_k=None) == reference.render(top_k=None), (
            f"{domain}: batched thread report diverged from the legacy path"
        )


@pytest.mark.slow
@pytest.mark.parametrize("domain", DOMAINS)
def test_batched_explain_identical_to_legacy_process(domain):
    """Process-sharded explain_batch (workers use the batch path) vs legacy."""
    references = _reference_reports(domain)
    system = build_probe_system(domain, kernel=True)
    reports = OntologyExplainer(system).explain_batch(
        probe_labelings(system, count=2),
        candidates=probe_pool(system),
        executor="process",
        max_workers=2,
        top_k=None,
    )
    for report, reference in zip(reports, references):
        assert report.render(top_k=None) == reference.render(top_k=None), (
            f"{domain}: batched process report diverged from the legacy path"
        )


@pytest.mark.parametrize("domain", ("university", "loans"))
def test_batch_policy_off_still_identical(domain):
    """kernel.batch.enabled=False serves through the PR-5 path, same output."""
    references = _reference_reports(domain)
    system = build_probe_system(domain, kernel=True)
    system.specification.engine.kernel.batch.enabled = False
    reports = OntologyExplainer(system).explain_batch(
        probe_labelings(system, count=2),
        candidates=probe_pool(system),
        executor="thread",
        max_workers=2,
        top_k=None,
    )
    for report, reference in zip(reports, references):
        assert report.render(top_k=None) == reference.render(top_k=None)


def test_numpy_unavailable_falls_back(monkeypatch):
    """Without numpy the batch flag is inert: kernel path, same rows."""
    import repro.engine.verdicts as verdicts_module

    system = build_probe_system("university", kernel=True)
    labeling = probe_labeling(system)
    pool = probe_pool(system)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, labeling)
    reference = VerdictMatrix(evaluator, columns)
    reference.build(pool)
    monkeypatch.setattr(batch_kernel, "HAS_NUMPY", False)
    fallback_system = build_probe_system("university", kernel=True)
    fallback_evaluator = MatchEvaluator(fallback_system, radius=1)
    fallback_columns = BorderColumns.from_labeling(fallback_evaluator, labeling)
    matrix = VerdictMatrix(fallback_evaluator, fallback_columns)
    assert matrix.batch_enabled is False
    matrix.build(pool)
    assert [matrix.row(query) for query in pool] == [
        reference.row(query) for query in pool
    ]


# -- generator-level provenance pruning ---------------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
@pytest.mark.parametrize("strategy", ("enumerate", "refine", "both"))
def test_pruned_search_equals_exhaustive_top_k(domain, strategy):
    """search(top_k=...) with generator pruning == the exhaustive prefix."""
    system = build_probe_system(domain, kernel=True)
    search = BestDescriptionSearch(system, probe_labeling(system))
    config = CandidateConfig(max_atoms=2, max_candidates=400)
    pruned = search.search(strategy=strategy, candidate_config=config, top_k=5)
    exhaustive_search = BestDescriptionSearch(
        build_probe_system(domain, kernel=True), probe_labeling(system)
    )
    exhaustive = exhaustive_search.search(strategy=strategy, candidate_config=config)[:5]
    assert [(str(entry.query), entry.score) for entry in pruned] == [
        (str(entry.query), entry.score) for entry in exhaustive
    ], f"{domain}/{strategy}: pruned top-k diverged from the exhaustive prefix"


@pytest.mark.parametrize("domain", DOMAINS)
def test_refinement_pruner_fires_and_is_invisible(domain):
    """The refinement lattice is where zero-support bodies actually arise."""
    system = build_probe_system(domain, kernel=True)
    search = BestDescriptionSearch(system, probe_labeling(system))
    exhaustive = search.candidate_pool("refine")
    pruner = search.scorer.verdict_matrix().pruner()
    pruned_pool = search.candidate_pool("refine", pruner=pruner)
    assert pruner.checked > 0
    assert pruner.pruned > 0, (
        f"{domain}: the refinement beam never hit a zero provenance bound"
    )
    ranked = search.rank(exhaustive)[:5]
    ranked_pruned = search.rank(pruned_pool)[:5]
    assert [(str(entry.query), entry.score) for entry in ranked] == [
        (str(entry.query), entry.score) for entry in ranked_pruned
    ]


def test_pruner_selection_slices_global_bounds():
    """A batch-path pruner (global index + selection) agrees with PR-5's."""
    system = build_probe_system("loans", kernel=True)
    labelings = probe_labelings(system, count=2)
    evaluator = MatchEvaluator(system, radius=1)
    layouts = [BorderColumns.from_labeling(evaluator, lab) for lab in labelings]
    batch = MultiLabelingBatchKernel(evaluator, layouts)
    from repro.engine.kernel import PoolMatchKernel, ProvenancePruner

    for index, columns in enumerate(layouts):
        sliced = ProvenancePruner(
            batch.kernel, columns, selection=batch.selection_for(index)
        )
        local = ProvenancePruner(PoolMatchKernel(evaluator, columns), columns)
        for query in probe_pool(system):
            assert sliced.body_bound(query.body if hasattr(query, "body") else ()) == (
                local.body_bound(query.body if hasattr(query, "body") else ())
            )


def test_support_memoization_counts_hits():
    system = build_probe_system("university", kernel=True)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, probe_labeling(system))
    from repro.engine.kernel import PoolMatchKernel

    kernel = PoolMatchKernel(evaluator, columns)
    [atom] = probe_pool(system)[0].body
    stats = system.specification.engine.cache.stats
    before = stats.as_dict()
    first = kernel.index().support(atom)
    second = kernel.index().support(atom)
    assert first == second
    delta = stats.delta_since(before)
    assert delta.get("support_misses") == 1
    assert delta.get("support_hits") == 1


# -- bottom-up cutoff accounting ----------------------------------------------


class TestCutoffAccounting:
    def _generator(self, system, max_candidates):
        return CandidateGenerator(
            system,
            radius=1,
            config=CandidateConfig(max_atoms=2, max_candidates=max_candidates),
        )

    def test_truncation_is_deterministic_and_a_prefix(self):
        system = build_probe_system("university", kernel=True)
        labeling = probe_labeling(system)
        full = self._generator(system, 10_000).generate(labeling)
        assert full.exhausted
        assert full.generated == len(full)
        assert full.truncated == 0 and full.unexplored_seeds == 0
        cap = max(2, len(full) // 2)
        truncated = self._generator(system, cap).generate(labeling)
        assert len(truncated) == cap
        assert [str(q) for q in truncated] == [str(q) for q in full[:cap]]
        assert not truncated.exhausted
        assert truncated.truncated + truncated.unexplored_seeds > 0
        again = self._generator(system, cap).generate(labeling)
        assert [str(q) for q in again] == [str(q) for q in truncated]

    def test_search_pool_surfaces_accounting(self):
        system = build_probe_system("university", kernel=True)
        search = BestDescriptionSearch(system, probe_labeling(system))
        pool = search.candidate_pool(
            "enumerate", CandidateConfig(max_atoms=2, max_candidates=5)
        )
        assert len(pool) <= 5
        assert pool.generated >= len(pool)
        assert not pool.exhausted


# -- memory-mapped spill matrices ---------------------------------------------


def _dense_rows(count, width):
    """*count* deterministic bitset rows mixing the ROWS edge cases in."""
    mask = (1 << width) - 1
    rows = [row & mask for row in ROWS]
    rows += [
        ((index * 0x9E3779B97F4A7C15) | (1 << (index % width))) & mask
        for index in range(count - len(rows))
    ]
    return rows


class TestMemmapSpillMatrices:
    """PR-10: spill-mode packed matrices are bit-identical to in-RAM arrays.

    ``engine.kernel.spill.enabled`` moves the batch kernel's global word
    matrix into a memory-mapped temp file, filled and consumed slab by
    slab.  Every helper on that path — ``pack_rows``,
    ``pack_bit_matrix``, ``gather_packed_spilled`` and the memmap branch
    of ``masked_popcounts`` — must reproduce the in-RAM ints and counts
    bit for bit; the widths/counts here deliberately avoid word and
    slab boundaries so padding and partial-slab handling are exercised.
    """

    WIDTH = 140  # three 64-bit words, not a multiple of 64
    COUNT = SPILL_SLAB_ROWS + 7  # forces a partial trailing slab

    def test_pack_rows_spill_identity(self):
        rows = _dense_rows(self.COUNT, self.WIDTH)
        plain = pack_rows(rows, self.WIDTH)
        spilled = pack_rows(rows, self.WIDTH, spill=True)
        assert hasattr(spilled, "_spill_source"), "spill=True must hit the memmap"
        assert (
            unpack_bits(spilled, self.WIDTH).tolist()
            == unpack_bits(plain, self.WIDTH).tolist()
        )
        # Round-trip through the packer recovers the exact Python ints.
        assert pack_bit_matrix(unpack_bits(spilled, self.WIDTH))[1] == rows

    def test_pack_rows_spill_empty_and_zero_width(self):
        assert pack_rows([], 128, spill=True).shape == (0, 2)
        zeros = pack_rows([0, 0], 0, spill=True)
        assert pack_bit_matrix(unpack_bits(zeros, 0))[1] == [0, 0]

    def test_pack_bit_matrix_spill_identity(self):
        rows = _dense_rows(self.COUNT, self.WIDTH)
        bits = unpack_bits(pack_rows(rows, self.WIDTH), self.WIDTH)
        plain_words, plain_ints = pack_bit_matrix(bits)
        spill_words, spill_ints = pack_bit_matrix(bits, spill=True)
        assert hasattr(spill_words, "_spill_source")
        assert spill_ints == plain_ints == rows
        assert unpack_bits(spill_words, self.WIDTH).tolist() == bits.tolist()

    def test_gather_packed_spilled_matches_in_ram_gather(self):
        rows = _dense_rows(self.COUNT, self.WIDTH)
        words = pack_rows(rows, self.WIDTH, spill=True)
        selection = [bit for bit in range(self.WIDTH) if bit % 3 != 1]
        reference_bits = unpack_bits(pack_rows(rows, self.WIDTH), self.WIDTH)[
            :, selection
        ]
        reference_ints = pack_bit_matrix(reference_bits)[1]
        gathered_words, gathered_ints = gather_packed_spilled(
            words, selection, self.WIDTH, len(rows)
        )
        assert hasattr(gathered_words, "_spill_source")
        assert gathered_ints == reference_ints
        assert (
            unpack_bits(gathered_words, len(selection)).tolist()
            == reference_bits.tolist()
        )

    def test_gather_empty_selection_and_empty_matrix(self):
        rows = _dense_rows(8, 70)
        words = pack_rows(rows, 70, spill=True)
        _, gathered_ints = gather_packed_spilled(words, [], 70, len(rows))
        assert gathered_ints == [0] * len(rows)
        _, empty_ints = gather_packed_spilled(pack_rows([], 70), [1, 2], 70, 0)
        assert empty_ints == []

    def test_masked_popcounts_memmap_slab_path(self):
        rows = _dense_rows(self.COUNT, self.WIDTH)
        mask = sum(1 << bit for bit in range(self.WIDTH) if bit % 2 == 0)
        expected = [(row & mask).bit_count() for row in rows]
        in_ram = masked_popcounts(pack_rows(rows, self.WIDTH), mask, self.WIDTH)
        spilled = masked_popcounts(
            pack_rows(rows, self.WIDTH, spill=True), mask, self.WIDTH
        )
        assert list(map(int, in_ram)) == expected
        assert list(map(int, spilled)) == expected

    @pytest.mark.parametrize("domain", DOMAINS)
    def test_rows_for_identical_with_spill(self, domain):
        """End-to-end: batch dispatch emits the same rows with spill on."""
        outputs = []
        for spill in (False, True):
            system = build_probe_system(domain, kernel=True)
            system.specification.engine.kernel.spill.enabled = spill
            labelings = probe_labelings(system, count=2)
            evaluator = MatchEvaluator(system, radius=1)
            layouts = [
                BorderColumns.from_labeling(evaluator, labeling)
                for labeling in labelings
            ]
            batch = MultiLabelingBatchKernel(evaluator, layouts)
            pool = probe_pool(system)
            results = batch.rows_for([pool] * len(layouts))
            outputs.append(
                [(tuple(layout.rows), tuple(layout.counts)) for layout in results]
            )
        assert outputs[0] == outputs[1]
