"""Cache-lifecycle tests: bounding, eviction, persistence, drift.

Three properties must survive every lifecycle event:

* **transparency** — eviction and snapshot loading may only change how
  fast an answer is produced, never the answer;
* **invalidation** — a consumer holding evicted shared state
  (a :class:`VerdictMatrix` whose column layout was dropped) must be
  able to detect it (``is_live``) and a fresh consumer must get a fresh
  store, not the evicted one;
* **incrementality** — :meth:`VerdictMatrix.apply_drift` must be
  byte-identical to a cold rebuild over the drifted labeling, across
  all four domain ontologies and both batch executors.
"""

from __future__ import annotations

import os
import pickle

import pytest

from repro.core.labeling import Labeling
from repro.core.matching import MatchEvaluator
from repro.engine import CacheLimits, EvaluationCache, LRUStore
from repro.engine.verdicts import BorderColumns, VerdictMatrix
from repro.errors import ExplanationError
from repro.obdm.system import OBDMSystem
from repro.ontologies.compas import build_compas_specification
from repro.ontologies.loans import build_loan_specification
from repro.ontologies.movies import build_movie_specification
from repro.ontologies.university import build_university_database, build_university_specification
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.workloads.compas_gen import CompasWorkloadConfig, generate_compas_workload
from repro.workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload
from repro.workloads.movies_gen import MovieWorkloadConfig, generate_movie_workload


# -- small deterministic databases per domain --------------------------------


def _university():
    specification = build_university_specification()
    return specification, build_university_database(specification.schema)


def _compas():
    specification = build_compas_specification()
    database = generate_compas_workload(CompasWorkloadConfig(persons=12, seed=11)).database
    return specification, database


def _loans():
    specification = build_loan_specification()
    database = generate_loan_workload(LoanWorkloadConfig(applicants=12, seed=7)).database
    return specification, database


def _movies():
    specification = build_movie_specification()
    database = generate_movie_workload(
        MovieWorkloadConfig(movies=8, directors=3, viewers=5, critics=2, seed=3)
    ).database
    return specification, database


DOMAIN_BUILDERS = {
    "university": _university,
    "compas": _compas,
    "loans": _loans,
    "movies": _movies,
}


def _fresh_system(domain: str) -> OBDMSystem:
    specification, database = DOMAIN_BUILDERS[domain]()
    return OBDMSystem(specification, database, name=f"{domain}_lifecycle")


def _domain_labelings(system: OBDMSystem):
    """An initial labeling and a drifted successor (add + remove + flip)."""
    constants = sorted(system.domain(), key=repr)[:7]
    initial = Labeling(positives=constants[:3], negatives=constants[3:5], name="drifting")
    drifted = Labeling(
        # constants[0] removed, constants[3] flipped to positive,
        # constants[5] and constants[6] added (one per side).
        positives=[constants[1], constants[2], constants[3], constants[5]],
        negatives=[constants[4], constants[6]],
        name="drifting",
    )
    return initial, drifted


def _domain_queries(system: OBDMSystem):
    ontology = system.ontology
    queries = [
        ConjunctiveQuery.of(("?x",), (Atom.of(concept, "?x"),), name=f"q_{concept}")
        for concept in sorted(ontology.concept_names)[:3]
    ]
    for role in sorted(ontology.role_names)[:2]:
        queries.append(
            ConjunctiveQuery.of(("?x",), (Atom.of(role, "?x", "?y"),), name=f"q_{role}")
        )
    assert len(queries) >= 2, f"no probe queries for {system.name}"
    # A UCQ probe: cold builds OR disjunct rows while drift evaluates
    # fresh columns per query, so the differential must cover unions too.
    queries.append(UnionOfConjunctiveQueries((queries[0], queries[1])))
    return queries


# -- LRUStore unit behaviour --------------------------------------------------


class TestLRUStore:
    def test_unbounded_by_default(self):
        store = LRUStore()
        for index in range(100):
            store.put(index, index)
        assert len(store) == 100

    def test_capacity_evicts_least_recently_used(self):
        store = LRUStore(capacity=2)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1  # refresh "a": "b" is now LRU
        store.put("c", 3)
        assert "b" not in store
        assert store.get("a") == 1 and store.get("c") == 3

    def test_peek_does_not_refresh_recency(self):
        store = LRUStore(capacity=2)
        store.put("a", 1)
        store.put("b", 2)
        store.get("a", touch=False)  # peek only: "a" stays LRU
        store.put("c", 3)
        assert "a" not in store

    def test_evictions_reported_to_stats(self):
        from repro.engine import CacheStats

        stats = CacheStats()
        store = LRUStore(capacity=1, stats=stats)
        store.put("a", 1)
        store.put("b", 2)
        store.put("c", 3)
        assert stats.evictions == 2

    def test_get_or_create_is_stable(self):
        store = LRUStore()
        first = store.get_or_create("k", dict)
        second = store.get_or_create("k", dict)
        assert first is second

    def test_merge_missing_prefers_live_entries(self):
        store = LRUStore()
        store.put("a", "live")
        added = store.merge_missing([("a", "persisted"), ("b", "persisted")])
        assert added == 1
        assert store.get("a") == "live"
        assert store.get("b") == "persisted"

    def test_merge_missing_overflow_evicts_itself_not_live_entries(self):
        # Persisted entries enter at the cold end: loading a snapshot into
        # a full store must never push out the hotter live entries — and
        # self-evicted inserts must not be reported as added.
        store = LRUStore(capacity=2)
        store.put("hot1", "live")
        store.put("hot2", "live")
        added = store.merge_missing([("cold1", "persisted"), ("cold2", "persisted")])
        assert added == 0
        assert store.get("hot1") == "live"
        assert store.get("hot2") == "live"
        assert "cold1" not in store and "cold2" not in store

    def test_merge_missing_preserves_persisted_cohort_order(self):
        # items() snapshots are oldest-first; after a merge the hottest
        # persisted entry must still be the last of the cohort to evict.
        store = LRUStore(capacity=3)
        store.merge_missing([("old", 1), ("mid", 2), ("hot", 3)])
        store.put("live", 4)  # evicts exactly one persisted entry
        assert "old" not in store
        assert store.get("mid", touch=False) == 2
        assert store.get("hot", touch=False) == 3

    def test_capacity_one_minimum(self):
        with pytest.raises(ValueError):
            LRUStore(capacity=0)
        with pytest.raises(ValueError):
            LRUStore().set_capacity(0)

    def test_pickle_round_trip_keeps_entries_and_capacity(self):
        store = LRUStore(capacity=3)
        store.put("a", 1)
        clone = pickle.loads(pickle.dumps(store))
        assert clone.get("a") == 1
        assert clone.capacity == 3
        clone.put("b", 2)  # the rebuilt lock must work


# -- bounded EvaluationCache ---------------------------------------------------


class TestBoundedEvaluationCache:
    @staticmethod
    def _make(limits=None, enabled=True):
        saturations = []

        def saturator(facts):
            saturations.append(facts)
            return facts

        cache = EvaluationCache(
            saturator=saturator, rewriter=lambda q: q, enabled=enabled, limits=limits
        )
        return cache, saturations

    def test_saturation_layer_is_bounded(self):
        cache, saturations = self._make(CacheLimits(saturations=2))
        fact_sets = [frozenset({Atom.of("C", f"a{i}")}) for i in range(3)]
        for facts in fact_sets:
            cache.saturated_index(facts)
        assert len(saturations) == 3
        assert cache.stats.evictions == 1
        cache.saturated_index(fact_sets[0])  # evicted: recomputed
        assert len(saturations) == 4
        cache.saturated_index(fact_sets[2])  # resident: memo hit
        assert len(saturations) == 4

    def test_configure_limits_shrinks_live_layers(self):
        cache, _ = self._make()
        for index in range(5):
            cache.saturated_index(frozenset({Atom.of("C", f"a{index}")}))
        assert cache.size_report()["saturations"] == 5
        cache.configure_limits(CacheLimits(saturations=2))
        assert cache.size_report()["saturations"] == 2
        assert cache.stats.evictions == 3

    def test_verdict_layout_eviction_hands_out_fresh_store(self):
        cache, _ = self._make(CacheLimits(verdict_layouts=1))
        first = cache.verdict_rows("layout_a")
        first[("q",)] = 0b1
        assert cache.has_verdict_layout("layout_a")
        second = cache.verdict_rows("layout_b")  # evicts layout_a
        assert not cache.has_verdict_layout("layout_a")
        assert cache.has_verdict_layout("layout_b")
        assert cache.stats.evictions == 1
        refetched = cache.verdict_rows("layout_a")
        assert refetched is not first and refetched == {}
        assert second == {}

    def test_saturation_lock_table_does_not_grow_with_traffic(self):
        cache, _ = self._make(CacheLimits(saturations=2))
        for index in range(16):
            cache.saturated_index(frozenset({Atom.of("C", f"a{index}")}))
        assert len(cache._saturation_locks) == 0

    def test_size_report_counts_rows_across_layouts(self):
        cache, _ = self._make()
        cache.verdict_rows("a").update({("q1",): 1, ("q2",): 2})
        cache.verdict_rows("b")[("q1",)] = 3
        report = cache.size_report()
        assert report["verdict_layouts"] == 2
        assert report["verdict_rows"] == 3


# -- persistence ---------------------------------------------------------------


class TestSnapshotPersistence:
    def test_round_trip_restores_every_layer(self, tmp_path):
        cache, saturations = TestBoundedEvaluationCache._make()
        facts = frozenset({Atom.of("C", "a")})
        cache.saturated_index(facts)
        cache.match(("verdict-key",), lambda: True)
        cache.border_abox(facts, lambda: "abox")
        cache.verdict_rows("layout")[("q",)] = 0b101
        path = tmp_path / "snapshot.pkl"
        cache.save(path)

        fresh, fresh_saturations = TestBoundedEvaluationCache._make()
        added = fresh.load(path)
        assert added["saturations"] == 1
        assert added["matches"] == 1
        assert added["border_aboxes"] == 1
        assert added["verdict_rows"] == 1
        fresh.saturated_index(facts)
        assert fresh_saturations == []  # served from the snapshot
        assert fresh.stats.saturation_hits == 1
        assert fresh.match(("verdict-key",), lambda: False) is True
        assert fresh.verdict_rows("layout")[("q",)] == 0b101

    def test_load_does_not_evict_live_verdict_layouts(self, tmp_path):
        # Persisted layouts enter at the cold end, like every other layer:
        # loading a snapshot into a warm bounded cache must not flip the
        # hot layouts' liveness (which would discard every warm session).
        source, _ = TestBoundedEvaluationCache._make()
        source.verdict_rows("cold_a")[("q",)] = 1
        source.verdict_rows("cold_b")[("q",)] = 2
        path = tmp_path / "snapshot.pkl"
        source.save(path)

        target, _ = TestBoundedEvaluationCache._make(CacheLimits(verdict_layouts=2))
        target.verdict_rows("hot_1")[("q",)] = 3
        target.verdict_rows("hot_2")[("q",)] = 4
        target.load(path)
        assert target.has_verdict_layout("hot_1")
        assert target.has_verdict_layout("hot_2")
        assert not target.has_verdict_layout("cold_a")
        assert not target.has_verdict_layout("cold_b")

    def test_load_merges_row_stores_and_live_entries_win(self, tmp_path):
        cache, _ = TestBoundedEvaluationCache._make()
        cache.verdict_rows("layout").update({("q1",): 1, ("q2",): 2})
        path = tmp_path / "snapshot.pkl"
        cache.save(path)
        target, _ = TestBoundedEvaluationCache._make()
        target.verdict_rows("layout")[("q1",)] = 99  # newer live value
        added = target.load(path)
        assert added["verdict_rows"] == 1  # only q2 merged
        rows = target.verdict_rows("layout")
        assert rows[("q1",)] == 99 and rows[("q2",)] == 2

    def test_border_pickle_drops_cached_hash(self):
        # Border hashes are salted per process (PYTHONHASHSEED); a pickled
        # cached hash would make every persisted memo entry keyed by a
        # border unreachable in the loading process.
        system = _fresh_system("university")
        from repro.core.border import BorderComputer

        border = BorderComputer(system.database).border("A10", 1)
        hash(border)  # populate the cache
        assert "_cached_hash" in border.__dict__
        clone = pickle.loads(pickle.dumps(border))
        assert "_cached_hash" not in clone.__dict__
        assert clone == border and hash(clone) == hash(border)

    @pytest.mark.slow
    def test_snapshot_is_warm_across_hash_randomized_processes(self, tmp_path):
        # The whole point of save()/load() is surviving a *real* restart,
        # where PYTHONHASHSEED differs.  Save in one interpreter, load in
        # another with a different seed, and require warm verdict rows.
        import subprocess
        import sys
        import textwrap

        path = tmp_path / "cross_process.cache"
        script = textwrap.dedent(
            """
            import sys
            from repro import ExplanationService, Labeling
            from repro.ontologies.university import build_university_system

            mode, path = sys.argv[1], sys.argv[2]
            service = ExplanationService(build_university_system())
            labeling = Labeling(
                positives=["A10", "B80", "C12", "D50"], negatives=["E25"])
            if mode == "save":
                service.explain(labeling)
                service.save(path)
            else:
                service.load(path)
                service.explain(labeling)
                stats = service.cache_stats
                assert stats.verdict_row_hits > 0, stats.as_dict()
                assert stats.verdict_row_misses == 0, stats.as_dict()
                assert stats.match_misses == 0, stats.as_dict()
            """
        )

        source_root = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
            "src",
        )

        def run(mode: str, seed: str) -> None:
            environment = dict(os.environ)
            environment["PYTHONHASHSEED"] = seed
            inherited = environment.get("PYTHONPATH")
            environment["PYTHONPATH"] = (
                source_root if not inherited else source_root + os.pathsep + inherited
            )
            completed = subprocess.run(
                [sys.executable, "-c", script, mode, str(path)],
                capture_output=True,
                text=True,
                env=environment,
            )
            assert completed.returncode == 0, completed.stderr

        run("save", seed="1")
        run("load", seed="2")

    def test_load_rejects_snapshots_from_other_specifications(self, tmp_path):
        # Memo keys are content-addressed only *within* one specification:
        # a snapshot computed under another ontology/mapping maps equal
        # keys to different values and must be refused, not merged.
        path = tmp_path / "university.cache"
        university = _fresh_system("university").specification.engine
        university.save_cache(path)
        loans = _fresh_system("loans").specification.engine
        with pytest.raises(ValueError):
            loans.load_cache(path)
        # Same specification content: accepted.
        university_again = _fresh_system("university").specification.engine
        university_again.load_cache(path)

    def test_bounded_load_reports_only_surviving_entries(self, tmp_path):
        source, _ = TestBoundedEvaluationCache._make()
        source.match(("k1",), lambda: True)
        source.match(("k2",), lambda: True)
        path = tmp_path / "snapshot.pkl"
        source.save(path)
        target, _ = TestBoundedEvaluationCache._make(CacheLimits(matches=2))
        target.match(("live1",), lambda: True)
        target.match(("live2",), lambda: True)
        added = target.load(path)
        assert added["matches"] == 0  # both cold inserts self-evicted

    def test_load_into_disabled_cache_merges_only_rewritings(self, tmp_path):
        source, _ = TestBoundedEvaluationCache._make()
        source.match(("k",), lambda: True)
        source.rewriting(ConjunctiveQuery.of(("?x",), (Atom.of("C", "?x"),)))
        path = tmp_path / "snapshot.pkl"
        source.save(path)
        disabled, _ = TestBoundedEvaluationCache._make(enabled=False)
        added = disabled.load(path)
        # The hot layers would never serve merged entries while disabled;
        # only the always-on rewriting memo is merged and reported.
        assert added["matches"] == 0 and added["saturations"] == 0
        assert added["rewritings"] == 1
        assert disabled.size_report()["matches"] == 0

    def test_load_rejects_foreign_files(self, tmp_path):
        path = tmp_path / "garbage.pkl"
        with open(path, "wb") as handle:
            pickle.dump({"not": "a snapshot"}, handle)
        cache, _ = TestBoundedEvaluationCache._make()
        with pytest.raises(ValueError):
            cache.load(path)

    def test_load_rejects_unknown_versions(self, tmp_path):
        cache, _ = TestBoundedEvaluationCache._make()
        state = cache.snapshot_state()
        state["version"] = 999
        path = tmp_path / "future.pkl"
        with open(path, "wb") as handle:
            pickle.dump(state, handle)
        with pytest.raises(ValueError):
            cache.load(path)


# -- eviction invalidates dependent matrix reuse -------------------------------


class TestMatrixEvictionInvalidation:
    def test_layout_eviction_flips_is_live(self):
        system = _fresh_system("university")
        system.specification.engine.cache.configure_limits(CacheLimits(verdict_layouts=1))
        evaluator = MatchEvaluator(system, radius=1)
        initial, drifted = _domain_labelings(system)
        queries = _domain_queries(system)

        matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, initial))
        matrix.build(queries)
        assert matrix.is_live()

        # A second labeling's layout evicts the first (capacity 1).
        other = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, drifted))
        other.build(queries)
        assert not matrix.is_live()
        assert other.is_live()

        # The evicted matrix still answers correctly from its private dict…
        fresh = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, initial))
        for query in queries:
            assert matrix.row(query) == fresh.row(query)
        # …and the rebuilt layout is live again.
        assert fresh.is_live()

    def test_touch_never_resurrects_an_evicted_layout(self):
        system = _fresh_system("university")
        system.specification.engine.cache.configure_limits(CacheLimits(verdict_layouts=1))
        evaluator = MatchEvaluator(system, radius=1)
        initial, drifted = _domain_labelings(system)
        queries = _domain_queries(system)
        matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, initial))
        matrix.build(queries)
        other = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, drifted))
        other.build(queries)  # evicts the first layout
        assert not matrix.is_live()
        matrix.touch()  # must not re-register an empty orphan layout
        assert not matrix.is_live()
        assert other.is_live()

    def test_disabled_cache_matrices_are_always_live(self):
        system = _fresh_system("university")
        system.specification.engine.cache.enabled = False
        evaluator = MatchEvaluator(system, radius=1)
        initial, _ = _domain_labelings(system)
        matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, initial))
        assert matrix.is_live()


# -- apply_drift differential: 4 domains × {thread, process} -------------------


def _assert_drift_matches_cold(domain: str, executor: str) -> None:
    system = _fresh_system(domain)
    evaluator = MatchEvaluator(system, radius=1)
    initial, drifted_labeling = _domain_labelings(system)
    queries = _domain_queries(system)

    matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, initial))
    matrix.build(queries)
    drift = initial.diff(drifted_labeling)
    assert not drift.is_empty()
    drifted = matrix.apply_drift(drift.added, drift.removed, drift.flipped)

    # Cold reference: a fresh specification (empty cache) over the same data.
    cold_system = _fresh_system(domain)
    cold_evaluator = MatchEvaluator(cold_system, radius=1)
    cold = VerdictMatrix(
        cold_evaluator, BorderColumns.from_labeling(cold_evaluator, drifted_labeling)
    )
    cold.build(queries)
    for query in queries:
        assert drifted.row(query) == cold.row(query), (
            f"{domain}: drifted row diverged from cold rebuild for {query}"
        )
        assert drifted.profile(query) == cold.profile(query)

    # End-to-end: batch-ranked reports over the drifted labeling agree with a
    # service-style warm scorer using the drifted matrix.
    from repro.core.best_describe import BestDescriptionSearch

    warm_search = BestDescriptionSearch(
        system, drifted_labeling, 1, evaluator=evaluator, matrix=drifted
    )
    warm_ranking = warm_search.rank(queries)
    from repro.engine.batch import BatchExplainer

    batch = BatchExplainer(cold_system, radius=1, executor=executor, max_workers=2)
    batch_ranking = batch.rank_pool(drifted_labeling, queries)
    assert [str(entry.query) for entry in warm_ranking] == [
        str(entry.query) for entry in batch_ranking
    ]
    assert [entry.score for entry in warm_ranking] == [
        entry.score for entry in batch_ranking
    ]


@pytest.mark.parametrize("domain", sorted(DOMAIN_BUILDERS))
def test_apply_drift_matches_cold_rebuild_thread(domain):
    _assert_drift_matches_cold(domain, executor="thread")


@pytest.mark.slow
@pytest.mark.parametrize("domain", sorted(DOMAIN_BUILDERS))
def test_apply_drift_matches_cold_rebuild_process(domain):
    _assert_drift_matches_cold(domain, executor="process")


class TestApplyDriftValidation:
    @staticmethod
    def _matrix():
        system = _fresh_system("university")
        evaluator = MatchEvaluator(system, radius=1)
        initial, _ = _domain_labelings(system)
        matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, initial))
        matrix.build(_domain_queries(system))
        return matrix, initial

    def test_removing_unlabelled_tuple_rejected(self):
        matrix, _ = self._matrix()
        with pytest.raises(ExplanationError):
            matrix.apply_drift(removed=["no-such-constant"])

    def test_adding_labelled_tuple_rejected(self):
        matrix, initial = self._matrix()
        existing = sorted(initial.positives, key=repr)[0]
        with pytest.raises(ExplanationError):
            matrix.apply_drift(added=[(existing, 1)])

    def test_bad_label_rejected(self):
        matrix, _ = self._matrix()
        with pytest.raises(ExplanationError):
            matrix.apply_drift(added=[("fresh-constant", 2)])

    def test_empty_drift_preserves_rows(self):
        matrix, _ = self._matrix()
        clone = matrix.apply_drift()
        assert clone.columns.tuples == matrix.columns.tuples
        for key, query in matrix._known_queries.items():
            assert clone.row(query) == matrix._rows[key]


# -- worker-side stats merge (process sharding) --------------------------------


@pytest.mark.slow
def test_process_sharding_merges_worker_stats():
    system = _fresh_system("loans")
    initial, _ = _domain_labelings(system)
    queries = _domain_queries(system)
    from repro.engine.batch import BatchExplainer

    stats = system.specification.engine.cache.stats
    before = stats.as_dict()
    batch = BatchExplainer(system, radius=1, executor="process", max_workers=2)
    batch.rank_pool(initial, queries)
    after = stats.as_dict()
    # All row construction happened inside worker processes; without the
    # merge the parent counters would not move at all.  (On the default
    # kernel path rows come from unified-index passes, not per-pair
    # J-match memo lookups, so verdict/subquery counters are the ones
    # guaranteed to move; the per-pair counter is exercised below with
    # the kernel disabled.)
    assert after["verdict_row_misses"] > before["verdict_row_misses"]
    assert after["subquery_misses"] > before["subquery_misses"]

    legacy_system = _fresh_system("loans")
    legacy_system.specification.engine.kernel.enabled = False
    legacy_stats = legacy_system.specification.engine.cache.stats
    before = legacy_stats.as_dict()
    batch = BatchExplainer(legacy_system, radius=1, executor="process", max_workers=2)
    batch.rank_pool(initial, queries)
    after = legacy_stats.as_dict()
    assert after["match_misses"] > before["match_misses"]
