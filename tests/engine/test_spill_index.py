"""Spill-to-disk unified border index: differential vs in-memory columns.

``engine.kernel.spill.enabled`` swaps the
:class:`~repro.engine.kernel.UnifiedBorderIndex`'s per-predicate
argument/provenance columns for memory-mapped temp-file stores
(:class:`~repro.engine.kernel.SpillArgsRows` /
:class:`~repro.engine.kernel.SpillMaskRows`).  Layout, row ids and
every consumer-visible answer must be identical in both modes — these
tests pin the store protocol, the index differential (including
``apply_patch`` under drift) and the end-to-end served rankings.
"""

import pickle
import random

import pytest

from repro.engine.kernel import SpillArgsRows, SpillMaskRows, UnifiedBorderIndex
from repro.queries.atoms import Atom
from repro.queries.terms import Constant, Variable

pytestmark = pytest.mark.backend


def fact(predicate, *values):
    return Atom(predicate, tuple(Constant(value) for value in values))


class TestSpillStores:
    def test_args_rows_round_trip(self):
        rows = SpillArgsRows()
        data = [
            (Constant("a"), Constant(1), Constant(2.5)),
            (Constant(True), Constant(False)),
            (Constant("x" * 500),),
        ]
        for row in data:
            rows.append(row)
        assert len(rows) == 3
        assert [rows[i] for i in range(3)] == data
        assert list(rows) == data
        with pytest.raises(IndexError):
            rows[3]
        rows.close()

    def test_mask_rows_set_get_and_widening(self):
        rows = SpillMaskRows()
        values = [0, 5, (1 << 63) - 1]
        for value in values:
            rows.append(value)
        # Force a widen-by-rebuild past the initial 8-byte width, then
        # again past 16 bytes, checking all earlier rows survive.
        rows[1] = 1 << 100
        rows.append(1 << 300)
        assert rows[0] == 0
        assert rows[1] == 1 << 100
        assert rows[2] == (1 << 63) - 1
        assert rows[3] == 1 << 300
        assert list(rows) == [0, 1 << 100, (1 << 63) - 1, 1 << 300]
        rows.close()

    def test_growth_past_initial_mmap_capacity(self):
        rows = SpillArgsRows()
        expected = []
        for i in range(3000):
            row = (Constant(f"value-{i:08d}"), Constant(i))
            rows.append(row)
            expected.append(row)
        sampled = random.Random(7).sample(range(3000), 50)
        for i in sampled:
            assert rows[i] == expected[i]
        rows.close()

    def test_pickle_materialises_to_lists(self):
        masks = SpillMaskRows()
        masks.append(3)
        masks.append(1 << 90)
        assert pickle.loads(pickle.dumps(masks)) == [3, 1 << 90]
        args = SpillArgsRows()
        args.append((Constant("a"),))
        assert pickle.loads(pickle.dumps(args)) == [(Constant("a"),)]


def build_entries(seed=11, borders=6, facts_per_border=30):
    rng = random.Random(seed)
    entries = []
    for bit in range(borders):
        atoms = set()
        for _ in range(facts_per_border):
            predicate = rng.choice(["R", "S", "T"])
            arity = {"R": 2, "S": 3, "T": 1}[predicate]
            atoms.add(
                fact(predicate, *(f"c{rng.randrange(25)}" for _ in range(arity)))
            )
        entries.append((bit, frozenset(atoms)))
    return entries


def probe_atoms():
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return [
        Atom("R", (x, y)),
        Atom("R", (Constant("c3"), y)),
        Atom("R", (x, Constant("c7"))),
        Atom("S", (x, y, z)),
        Atom("S", (x, Constant("c1"), Constant("c2"))),
        Atom("T", (Constant("c5"),)),
        Atom("T", (x,)),
        Atom("U", (x,)),  # unknown predicate
    ]


def canonical_candidates(index, atom):
    return sorted((args, mask) for args, mask in index.candidates(atom))


class TestSpilledIndexDifferential:
    def test_candidates_and_support_identical(self):
        entries = build_entries()
        plain = UnifiedBorderIndex(entries)
        spilled = UnifiedBorderIndex(entries, spill=True)
        assert spilled.spilled and not plain.spilled
        assert spilled.full_mask == plain.full_mask
        for atom in probe_atoms():
            assert canonical_candidates(spilled, atom) == canonical_candidates(
                plain, atom
            ), atom
            assert spilled.support(atom) == plain.support(atom), atom
        spilled.close()

    def test_apply_patch_identical(self):
        entries = build_entries()
        plain = UnifiedBorderIndex(entries)
        spilled = UnifiedBorderIndex(entries, spill=True)
        patch = [
            (1, frozenset({fact("R", "c3", "newc"), fact("T", "c5")})),
            (4, frozenset()),
            # A brand-new bit, containing one fact the index already
            # holds (exercises the row-id reuse path under the encoded
            # row key) and one it has never seen.
            (7, frozenset({sorted(entries[0][1])[0], fact("S", "p", "q", "r")})),
        ]
        assert spilled.apply_patch(patch) == plain.apply_patch(patch)
        assert spilled.full_mask == plain.full_mask
        for atom in probe_atoms():
            assert canonical_candidates(spilled, atom) == canonical_candidates(
                plain, atom
            ), atom
            assert spilled.support(atom) == plain.support(atom), atom
        spilled.close()

    def test_end_to_end_rankings_identical(self):
        from repro.experiments.scalability import build_loan_pool
        from repro.obdm.system import OBDMSystem
        from repro.ontologies.loans import build_loan_specification
        from repro.service import ExplanationService

        bundle = build_loan_pool(16, 12, 5)
        renders = []
        for spill in (False, True):
            specification = build_loan_specification()
            specification.engine.kernel.spill.enabled = spill
            system = OBDMSystem(
                specification, bundle.database.copy(name=f"spill_{spill}")
            )
            service = ExplanationService(system, radius=0)
            renders.append(
                service.explain(
                    bundle.labelings[0], candidates=bundle.pool, top_k=None
                ).render(top_k=None)
            )
        assert renders[0] == renders[1]
