"""Spill-to-disk unified border index: differential vs in-memory columns.

``engine.kernel.spill.enabled`` swaps the
:class:`~repro.engine.kernel.UnifiedBorderIndex`'s per-predicate
argument/provenance columns for memory-mapped temp-file stores
(:class:`~repro.engine.kernel.SpillArgsRows` /
:class:`~repro.engine.kernel.SpillMaskRows`).  Layout, row ids and
every consumer-visible answer must be identical in both modes — these
tests pin the store protocol, the index differential (including
``apply_patch`` under drift) and the end-to-end served rankings.
"""

import os
import pickle
import random
import tempfile

import pytest

from repro.core.matching import MatchEvaluator
from repro.engine.kernel import (
    PoolMatchKernel,
    SpillArgsRows,
    SpillMaskRows,
    UnifiedBorderIndex,
)
from repro.engine.verdicts import BorderColumns
from repro.experiments.kernel_exp import (
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.queries.atoms import Atom
from repro.queries.terms import Constant, Variable

pytestmark = pytest.mark.backend


def fact(predicate, *values):
    return Atom(predicate, tuple(Constant(value) for value in values))


class TestSpillStores:
    def test_args_rows_round_trip(self):
        rows = SpillArgsRows()
        data = [
            (Constant("a"), Constant(1), Constant(2.5)),
            (Constant(True), Constant(False)),
            (Constant("x" * 500),),
        ]
        for row in data:
            rows.append(row)
        assert len(rows) == 3
        assert [rows[i] for i in range(3)] == data
        assert list(rows) == data
        with pytest.raises(IndexError):
            rows[3]
        rows.close()

    def test_mask_rows_set_get_and_widening(self):
        rows = SpillMaskRows()
        values = [0, 5, (1 << 63) - 1]
        for value in values:
            rows.append(value)
        # Force a widen-by-rebuild past the initial 8-byte width, then
        # again past 16 bytes, checking all earlier rows survive.
        rows[1] = 1 << 100
        rows.append(1 << 300)
        assert rows[0] == 0
        assert rows[1] == 1 << 100
        assert rows[2] == (1 << 63) - 1
        assert rows[3] == 1 << 300
        assert list(rows) == [0, 1 << 100, (1 << 63) - 1, 1 << 300]
        rows.close()

    def test_growth_past_initial_mmap_capacity(self):
        rows = SpillArgsRows()
        expected = []
        for i in range(3000):
            row = (Constant(f"value-{i:08d}"), Constant(i))
            rows.append(row)
            expected.append(row)
        sampled = random.Random(7).sample(range(3000), 50)
        for i in sampled:
            assert rows[i] == expected[i]
        rows.close()

    def test_pickle_materialises_to_lists(self):
        masks = SpillMaskRows()
        masks.append(3)
        masks.append(1 << 90)
        assert pickle.loads(pickle.dumps(masks)) == [3, 1 << 90]
        args = SpillArgsRows()
        args.append((Constant("a"),))
        assert pickle.loads(pickle.dumps(args)) == [(Constant("a"),)]


def build_entries(seed=11, borders=6, facts_per_border=30):
    rng = random.Random(seed)
    entries = []
    for bit in range(borders):
        atoms = set()
        for _ in range(facts_per_border):
            predicate = rng.choice(["R", "S", "T"])
            arity = {"R": 2, "S": 3, "T": 1}[predicate]
            atoms.add(
                fact(predicate, *(f"c{rng.randrange(25)}" for _ in range(arity)))
            )
        entries.append((bit, frozenset(atoms)))
    return entries


def probe_atoms():
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return [
        Atom("R", (x, y)),
        Atom("R", (Constant("c3"), y)),
        Atom("R", (x, Constant("c7"))),
        Atom("S", (x, y, z)),
        Atom("S", (x, Constant("c1"), Constant("c2"))),
        Atom("T", (Constant("c5"),)),
        Atom("T", (x,)),
        Atom("U", (x,)),  # unknown predicate
    ]


def canonical_candidates(index, atom):
    return sorted((args, mask) for args, mask in index.candidates(atom))


class TestSpilledIndexDifferential:
    def test_candidates_and_support_identical(self):
        entries = build_entries()
        plain = UnifiedBorderIndex(entries)
        spilled = UnifiedBorderIndex(entries, spill=True)
        assert spilled.spilled and not plain.spilled
        assert spilled.full_mask == plain.full_mask
        for atom in probe_atoms():
            assert canonical_candidates(spilled, atom) == canonical_candidates(
                plain, atom
            ), atom
            assert spilled.support(atom) == plain.support(atom), atom
        spilled.close()

    def test_apply_patch_identical(self):
        entries = build_entries()
        plain = UnifiedBorderIndex(entries)
        spilled = UnifiedBorderIndex(entries, spill=True)
        patch = [
            (1, frozenset({fact("R", "c3", "newc"), fact("T", "c5")})),
            (4, frozenset()),
            # A brand-new bit, containing one fact the index already
            # holds (exercises the row-id reuse path under the encoded
            # row key) and one it has never seen.
            (7, frozenset({sorted(entries[0][1])[0], fact("S", "p", "q", "r")})),
        ]
        assert spilled.apply_patch(patch) == plain.apply_patch(patch)
        assert spilled.full_mask == plain.full_mask
        for atom in probe_atoms():
            assert canonical_candidates(spilled, atom) == canonical_candidates(
                plain, atom
            ), atom
            assert spilled.support(atom) == plain.support(atom), atom
        spilled.close()

    def test_end_to_end_rankings_identical(self):
        from repro.experiments.scalability import build_loan_pool
        from repro.obdm.system import OBDMSystem
        from repro.ontologies.loans import build_loan_specification
        from repro.service import ExplanationService

        bundle = build_loan_pool(16, 12, 5)
        renders = []
        for spill in (False, True):
            specification = build_loan_specification()
            specification.engine.kernel.spill.enabled = spill
            system = OBDMSystem(
                specification, bundle.database.copy(name=f"spill_{spill}")
            )
            service = ExplanationService(system, radius=0)
            renders.append(
                service.explain(
                    bundle.labelings[0], candidates=bundle.pool, top_k=None
                ).render(top_k=None)
            )
        assert renders[0] == renders[1]


def live_spill_fds() -> int:
    """How many spill temp files this process holds open.

    The spill stores' ``tempfile.TemporaryFile`` handles are anonymous
    (unlinked) on POSIX, so the only observable footprint of a live
    spilled column is its file descriptor — count them straight out of
    ``/proc/self/fd`` rather than guessing at disk usage.  On Linux
    ``O_TMPFILE`` never names the file at all (the fd resolves to
    ``<tmpdir>/#<inode> (deleted)``); on the unlink fallback the
    ``repro-spill-`` prefix survives in the resolved (deleted) path.
    """
    tmpdir = tempfile.gettempdir()
    count = 0
    for entry in os.listdir("/proc/self/fd"):
        try:
            target = os.readlink(f"/proc/self/fd/{entry}")
        except OSError:
            continue  # the fd closed between listdir and readlink
        if "repro-spill-" in target or (
            target.startswith(f"{tmpdir}/#") and target.endswith(" (deleted)")
        ):
            count += 1
    return count


@pytest.mark.skipif(
    not os.path.isdir("/proc/self/fd"), reason="needs the /proc fd table"
)
class TestSpillTempFileLifecycle:
    """Superseded kernels must release their spilled columns promptly.

    ``PoolMatchKernel.patched`` on a *restricted* kernel cannot hand its
    index to the successor (it covers only a bit subset), so the stale
    index has to be closed on the spot — leaving the release to garbage
    collection keeps memory-mapped temp files pinning disk for as long
    as any stray reference survives.  These tests count live
    ``repro-spill-`` file descriptors around each transition, so a
    dropped ``close()`` shows up as a leaked fd, deterministically.
    """

    def _spilled_setup(self):
        system = build_probe_system("loans", kernel=True)
        system.specification.engine.kernel.spill.enabled = True
        evaluator = MatchEvaluator(system, radius=0)
        columns = BorderColumns.from_labeling(evaluator, probe_labeling(system))
        assert columns.width >= 2, "the restricted-bits scenario needs >= 2 columns"
        return system, evaluator, columns

    def test_patched_restricted_kernel_closes_spilled_index(self):
        system, evaluator, columns = self._spilled_setup()
        query = probe_pool(system)[0]
        restricted = PoolMatchKernel(
            evaluator, columns, bits=tuple(range(columns.width - 1))
        )
        baseline = live_spill_fds()
        restricted.row(query)  # force the spilled index build
        assert live_spill_fds() > baseline
        successor = restricted.patched(columns, [])
        # The regression: before the fix the restricted index stayed
        # attached (and its fds open) until the GC got around to it.
        assert live_spill_fds() == baseline
        assert restricted._index is None
        # The successor builds lazily and serves the same verdicts as a
        # directly-built full-width kernel.
        reference = PoolMatchKernel(evaluator, columns)
        assert successor.row(query) == reference.row(query)
        successor.close()
        reference.close()
        assert live_spill_fds() == baseline

    def test_patched_full_width_kernel_adopts_spilled_index(self):
        system, evaluator, columns = self._spilled_setup()
        query = probe_pool(system)[0]
        kernel = PoolMatchKernel(evaluator, columns)
        baseline = live_spill_fds()
        kernel.row(query)
        built = live_spill_fds()
        assert built > baseline
        successor = kernel.patched(columns, [])
        # Full-width supersession transfers the index: same fds, no
        # duplicate spill files, predecessor detached.
        assert live_spill_fds() == built
        assert kernel._index is None
        assert successor.row(query) == kernel.row(query)
        successor.close()
        kernel.close()
        assert live_spill_fds() == baseline

    def test_close_is_idempotent_and_safe_on_unbuilt_kernels(self):
        system, evaluator, columns = self._spilled_setup()
        query = probe_pool(system)[0]
        unbuilt = PoolMatchKernel(evaluator, columns)
        unbuilt.close()
        unbuilt.close()  # never built: both calls are no-ops
        baseline = live_spill_fds()
        kernel = PoolMatchKernel(evaluator, columns)
        expected = kernel.row(query)
        assert live_spill_fds() > baseline
        kernel.close()
        assert live_spill_fds() == baseline
        kernel.close()  # second close stays a no-op
        assert live_spill_fds() == baseline
        # A closed kernel rebuilds lazily on the next row request.
        assert kernel.row(query) == expected
        kernel.close()
        assert live_spill_fds() == baseline
