"""Differential and unit tests for the pool-level match kernel.

The kernel path (``repro.engine.kernel``) must be *indistinguishable*
from the per-pair row-construction path: same verdict rows, same
scores, same rankings — for all four domain ontologies, for CQ and UCQ
candidates, with the evaluation cache on or off, under both answering
strategies, and with thread/process executors on top.  The per-pair
path (kernel disabled, bitset verdicts enabled) is the reference.

Also covered here: the edge pools of the issue checklist (empty pool,
single-atom candidates, zero-provenance predicates, all-negative
labelings), subquery-tabling reuse, top-k bound pruning exactness, the
kernel-evaluated fresh columns of ``apply_drift``, and the
verdict-row-miss stats regression (UCQ rows built from cached disjunct
rows must not count as misses).
"""

from __future__ import annotations

import pytest

from repro.core.best_describe import BestDescriptionSearch
from repro.core.explainer import OntologyExplainer
from repro.core.labeling import Labeling
from repro.core.matching import MatchEvaluator
from repro.engine.verdicts import BorderColumns, VerdictMatrix
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.obdm.system import OBDMSystem
from repro.ontologies.loans import build_loan_specification
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

pytestmark = pytest.mark.kernel


# The per-domain probe systems/pools are the E12 experiment's own
# (repro.experiments.kernel_exp) — one definition, so the identity sweep
# and this suite can never validate diverging workloads.
DOMAINS = PROBE_DOMAINS
_system = build_probe_system
_labeling = probe_labeling
_candidate_pool = probe_pool


_REFERENCE_CACHE = {}


def _reference_report(domain: str, strategy=None):
    """The per-pair-path (kernel off, cache on) report, computed once."""
    key = (domain, strategy)
    if key not in _REFERENCE_CACHE:
        system = _system(domain, kernel=False, strategy=strategy)
        report = OntologyExplainer(system).explain(
            _labeling(system), candidates=_candidate_pool(system), top_k=None
        )
        _REFERENCE_CACHE[key] = report
    return _REFERENCE_CACHE[key]


# -- the differential matrix --------------------------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
@pytest.mark.parametrize("cache", [True, False], ids=["cache", "nocache"])
def test_kernel_identical_to_per_pair(domain, cache):
    """Kernel rows/scores/reports match the per-pair path, cache on or off."""
    reference = _reference_report(domain)
    system = _system(domain, kernel=True, cache=cache)
    report = OntologyExplainer(system).explain(
        _labeling(system), candidates=_candidate_pool(system), top_k=None
    )
    assert report.render(top_k=None) == reference.render(top_k=None), (
        f"{domain}: kernel (cache={cache}) report diverged from the per-pair path"
    )
    for expected, actual in zip(reference.explanations, report.explanations):
        assert str(actual.query) == str(expected.query)
        assert actual.score == expected.score
        assert actual.profile == expected.profile


@pytest.mark.parametrize("domain", DOMAINS)
def test_kernel_identical_under_chase_strategy(domain):
    """The chase strategy merges per-border *saturations*; rows still match."""
    reference = _reference_report(domain, strategy="chase")
    system = _system(domain, kernel=True, strategy="chase")
    report = OntologyExplainer(system).explain(
        _labeling(system), candidates=_candidate_pool(system), top_k=None
    )
    assert report.render(top_k=None) == reference.render(top_k=None), (
        f"{domain}: kernel chase-strategy report diverged from the per-pair path"
    )


@pytest.mark.parametrize("domain", DOMAINS)
def test_kernel_rows_equal_per_pair_verdicts(domain):
    """Bit-for-bit: each kernel row equals the per-pair matches_border bits."""
    system = _system(domain, kernel=True)
    labeling = _labeling(system)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, labeling)
    matrix = VerdictMatrix(evaluator, columns)
    matrix.build(_candidate_pool(system))
    checker = MatchEvaluator(_system(domain, kernel=False), radius=1)
    for query in _candidate_pool(system):
        row = matrix.row(query)
        for bit, border in enumerate(columns.borders):
            assert bool(row >> bit & 1) == checker.matches_border(query, border), (
                f"{domain}: bit {bit} of {query} diverged"
            )


@pytest.mark.slow
@pytest.mark.parametrize("domain", DOMAINS)
def test_process_sharding_on_kernel_path(domain):
    """Sharded scoring over the kernel path stays per-pair-identical."""
    reference = _reference_report(domain)
    system = _system(domain, kernel=True)
    reports = OntologyExplainer(system).explain_batch(
        [_labeling(system)],
        candidates=_candidate_pool(system),
        executor="process",
        max_workers=2,
        top_k=None,
    )
    assert reports[0].render(top_k=None) == reference.render(top_k=None)


# -- edge pools ---------------------------------------------------------------


class TestEdgePools:
    def _matrix(self, system, labeling):
        evaluator = MatchEvaluator(system, radius=1)
        columns = BorderColumns.from_labeling(evaluator, labeling)
        return VerdictMatrix(evaluator, columns)

    def test_empty_pool(self):
        system = _system("university")
        matrix = self._matrix(system, _labeling(system))
        matrix.build([])
        assert matrix.known_rows() == 0

    def test_single_atom_candidates(self):
        system = _system("university")
        legacy = _system("university", kernel=False)
        labeling = _labeling(system)
        pool = [
            query
            for query in _candidate_pool(system)
            if isinstance(query, ConjunctiveQuery) and query.atom_count() == 1
        ]
        assert pool, "the domain pool should contain single-atom candidates"
        matrix = self._matrix(system, labeling)
        matrix.build(pool)
        reference = self._matrix(legacy, labeling)
        for query in pool:
            assert matrix.row(query) == reference.row(query)

    def test_zero_provenance_predicate(self):
        """A predicate absent from every border yields an all-zero row."""
        system = _system("university")
        system.ontology.declare_concept("PhantomConcept")
        labeling = _labeling(system)
        matrix = self._matrix(system, labeling)
        ghost = ConjunctiveQuery.of(
            ("?x",), (Atom.of("PhantomConcept", "?x"),), name="q_ghost"
        )
        assert matrix.row(ghost) == 0
        assert matrix.upper_bound_row(ghost) == 0
        # Joining the phantom predicate into a real candidate zeroes it too.
        role = sorted(system.ontology.role_names)[0]
        joined = ConjunctiveQuery.of(
            ("?x",),
            (Atom.of(role, "?x", "?y"), Atom.of("PhantomConcept", "?x")),
            name="q_joined",
        )
        assert matrix.row(joined) == 0

    def test_all_negative_labeling(self):
        system = _system("university")
        legacy = _system("university", kernel=False)
        constants = sorted(system.domain(), key=repr)[:4]
        labeling = Labeling(positives=(), negatives=constants, name="all_negative")
        pool = _candidate_pool(system)
        matrix = self._matrix(system, labeling)
        matrix.build(pool)
        reference = self._matrix(legacy, labeling)
        assert matrix.columns.positive_count == 0
        for query in pool:
            assert matrix.row(query) == reference.row(query)


# -- subquery tabling ---------------------------------------------------------


def test_subquery_tabling_reuses_shared_prefixes():
    """Candidates sharing a two-atom prefix pay for it once."""
    system = _system("university")
    labeling = _labeling(system)
    stats = system.specification.engine.cache.stats
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, labeling)
    matrix = VerdictMatrix(evaluator, columns)
    pool = _candidate_pool(system)
    matrix.build(pool)
    assert stats.subquery_misses > 0, "building the pool should table prefixes"
    hits_after_build = stats.subquery_hits

    # A second matrix over the same layout (fresh object, shared cache)
    # reuses the tabled states instead of re-joining them; the shared
    # verdict rows are dropped first so the rows genuinely recompute.
    misses_after_build = stats.subquery_misses
    system.specification.engine.cache._verdict_rows.clear()
    again = VerdictMatrix(MatchEvaluator(system, radius=1), columns)
    again.build(pool)
    assert stats.subquery_hits > hits_after_build, (
        "a rebuilt matrix over the same borders should hit the tabled prefixes"
    )
    assert stats.subquery_misses == misses_after_build, (
        "a rebuilt matrix over the same borders re-joined already-tabled prefixes"
    )


def test_subquery_tables_bounded_by_cache_limits():
    from repro.engine.cache import CacheLimits

    system = _system("university")
    cache = system.specification.engine.cache
    cache.configure_limits(CacheLimits(subqueries=1))
    labeling = _labeling(system)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, labeling)
    VerdictMatrix(evaluator, columns).build(_candidate_pool(system))
    report = cache.size_report()
    assert report["subquery_indexes"] <= 1
    assert report["subquery_states"] > 0


# -- stats regression (issue checklist: UCQ double-counting) -------------------


def test_ucq_rows_do_not_double_count_misses():
    """A UCQ row OR-ed from cached disjunct rows is not a genuine miss."""
    system = _system("university")
    stats = system.specification.engine.cache.stats
    labeling = _labeling(system)
    evaluator = MatchEvaluator(system, radius=1)
    columns = BorderColumns.from_labeling(evaluator, labeling)
    matrix = VerdictMatrix(evaluator, columns)
    cqs = [q for q in _candidate_pool(system) if isinstance(q, ConjunctiveQuery)][:2]
    for cq in cqs:
        matrix.row(cq)
    misses_after_cqs = stats.verdict_row_misses
    hits_after_cqs = stats.verdict_row_hits
    assert misses_after_cqs >= len(cqs)

    union = UnionOfConjunctiveQueries.of(cqs, name="q_union_stats")
    matrix.row(union)
    # The union row is OR arithmetic over two cached disjunct rows: two
    # hits, zero new misses (this is the regression: the union itself
    # used to count as a miss on top of the disjunct hits).
    assert stats.verdict_row_misses == misses_after_cqs, (
        "a UCQ row built from cached disjunct rows counted as a verdict-row miss"
    )
    assert stats.verdict_row_hits == hits_after_cqs + len(cqs)

    # Re-reading the union is a plain hit.
    matrix.row(union)
    assert stats.verdict_row_hits == hits_after_cqs + len(cqs) + 1
    assert stats.verdict_row_misses == misses_after_cqs


def test_fresh_ucq_counts_only_disjunct_misses():
    """A cold UCQ row costs exactly one miss per genuinely computed disjunct."""
    system = _system("university")
    stats = system.specification.engine.cache.stats
    labeling = _labeling(system)
    evaluator = MatchEvaluator(system, radius=1)
    matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, labeling))
    cqs = [q for q in _candidate_pool(system) if isinstance(q, ConjunctiveQuery)][:2]
    before = stats.verdict_row_misses
    matrix.row(UnionOfConjunctiveQueries.of(cqs, name="q_union_cold"))
    assert stats.verdict_row_misses == before + len(cqs)


# -- top-k bound pruning -------------------------------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
def test_top_k_pruning_matches_exhaustive(domain):
    system = _system(domain, kernel=True)
    labeling = _labeling(system)
    pool = _candidate_pool(system)
    for k in (1, 2, len(pool) - 1, len(pool), len(pool) + 3):
        exhaustive = BestDescriptionSearch(system, labeling).rank(pool)[:k]
        pruned = BestDescriptionSearch(system, labeling).top_k(pool, k)
        assert [(str(e.query), e.score, e.profile) for e in pruned] == [
            (str(e.query), e.score, e.profile) for e in exhaustive
        ], f"{domain}: top_k({k}) diverged from the exhaustive prefix"


def test_top_k_pruning_skips_exact_evaluation():
    from repro.experiments.scalability import build_loan_pool

    workload = build_loan_pool(applicants=40, candidate_pool=30, labeled_per_side=12)
    system = OBDMSystem(build_loan_specification(), workload.database, name="loan_topk")
    search = BestDescriptionSearch(system, workload.labelings[0])
    pruned = search.top_k(list(workload.pool), 3)
    assert len(pruned) == 3
    evaluated = search.scorer.verdict_matrix().known_rows()
    assert evaluated < len(workload.pool), (
        "top-k pruning built a verdict row for every candidate"
    )


def test_top_k_falls_back_for_set_reading_criteria():
    """Criteria that read tuple sets cannot be bounded: exhaustive fallback."""
    from repro.core.criteria import Criterion
    from repro.core.scoring import WeightedAverage

    set_reader = Criterion(
        "set_reader",
        "touches the matched-positive tuple set directly",
        lambda context: 1.0 if context.profile.positives_matched is not None else 0.0,
    )
    system = _system("loans", kernel=True)
    labeling = _labeling(system)
    pool = _candidate_pool(system)
    kwargs = dict(
        criteria=(set_reader,),
        expression=WeightedAverage.of({"set_reader": 1.0}),
    )
    exhaustive = BestDescriptionSearch(system, labeling, **kwargs).rank(pool)[:2]
    pruned = BestDescriptionSearch(system, labeling, **kwargs).top_k(pool, 2)
    assert [(str(e.query), e.score) for e in pruned] == [
        (str(e.query), e.score) for e in exhaustive
    ]


def test_top_k_exact_for_non_monotone_count_criterion():
    """A counts-only criterion peaked at interior TP must not be pruned.

    The corner bound is unsound for it (its maximum is at TP = P/2, not
    at a corner), so ``_prunes`` refuses custom criteria outright and
    the result must equal the exhaustive prefix.
    """
    from repro.core.criteria import Criterion
    from repro.core.scoring import WeightedAverage

    def peaked(context):
        profile = context.profile
        total = profile.positive_total
        if total == 0:
            return 0.0
        return 4.0 * profile.true_positives * (total - profile.true_positives) / total**2

    peak = Criterion("peak", "maximal at TP = P/2 (non-monotone)", peaked)
    system = _system("loans", kernel=True)
    labeling = _labeling(system)
    pool = _candidate_pool(system)
    kwargs = dict(criteria=(peak,), expression=WeightedAverage.of({"peak": 1.0}))
    exhaustive = BestDescriptionSearch(system, labeling, **kwargs).rank(pool)[:2]
    pruned_search = BestDescriptionSearch(system, labeling, **kwargs)
    assert not pruned_search._prunes()
    pruned = pruned_search.top_k(pool, 2)
    assert [(str(e.query), e.score) for e in pruned] == [
        (str(e.query), e.score) for e in exhaustive
    ]


def test_optimistic_score_bounds_exact_score():
    system = _system("loans", kernel=True)
    labeling = _labeling(system)
    search = BestDescriptionSearch(system, labeling)
    for query in _candidate_pool(system):
        bound = search.scorer.optimistic_score(query)
        exact = search.scorer.score(query).score
        assert bound >= exact - 1e-12, (
            f"optimistic bound {bound} below exact score {exact} for {query}"
        )


# -- drift through the kernel --------------------------------------------------


def test_apply_drift_fresh_columns_via_kernel():
    """Kernel-evaluated fresh columns match a cold rebuild bit for bit."""
    system = _system("university", kernel=True)
    constants = sorted(system.domain(), key=repr)[:8]
    labeling = Labeling(positives=constants[:3], negatives=constants[3:6], name="drifting")
    evaluator = MatchEvaluator(system, radius=1)
    matrix = VerdictMatrix(evaluator, BorderColumns.from_labeling(evaluator, labeling))
    pool = _candidate_pool(system)
    matrix.build(pool)
    drifted = matrix.apply_drift(
        added=[(constants[6], 1), (constants[7], -1)],
        removed=[constants[0]],
        flipped=[constants[3]],
    )
    cold_labeling = Labeling(
        positives=[constants[1], constants[2], constants[6], constants[3]],
        negatives=[constants[4], constants[5], constants[7]],
        name="drifting",
    )
    cold_system = _system("university", kernel=True)
    cold_evaluator = MatchEvaluator(cold_system, radius=1)
    cold = VerdictMatrix(
        cold_evaluator, BorderColumns.from_labeling(cold_evaluator, cold_labeling)
    )
    assert drifted.columns.tuples == cold.columns.tuples
    for query in pool:
        assert drifted.row(query) == cold.row(query), f"drifted row diverged for {query}"
