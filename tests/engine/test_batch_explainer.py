"""Tests for concurrent batch scoring (repro.engine.batch).

``explain_batch`` must be indistinguishable from a sequential loop of
``explain`` calls — same queries, same scores, same ranks, same rendered
reports — regardless of worker count or answering strategy.
"""

from __future__ import annotations

import pytest

from repro.core.best_describe import BestDescriptionSearch
from repro.core.explainer import OntologyExplainer
from repro.core.labeling import Labeling
from repro.engine import BatchExplainer
from repro.obdm.system import OBDMSystem


@pytest.fixture(scope="module")
def second_labeling():
    """A different split of the running example's students."""
    return Labeling(positives=["A10", "B80", "C12"], negatives=["D50", "E25"], name="lambda_b")


@pytest.fixture(scope="module")
def chase_university_system(university_system):
    chased = university_system.specification.with_strategy("chase")
    return OBDMSystem(chased, university_system.database, name="uni_chase_batch")


class TestExplainBatchEqualsSequential:
    def test_with_explicit_candidates(
        self, university_explainer, university_labeling, second_labeling, university_queries
    ):
        candidates = list(university_queries.values())
        labelings = [university_labeling, second_labeling]
        sequential = [
            university_explainer.explain(labeling, candidates=candidates)
            for labeling in labelings
        ]
        batch = university_explainer.explain_batch(labelings, candidates=candidates)
        assert len(batch) == 2
        for expected, actual in zip(sequential, batch):
            assert actual.render(top_k=None) == expected.render(top_k=None)

    def test_with_generated_pools(self, university_explainer, university_labeling, second_labeling):
        labelings = [university_labeling, second_labeling]
        sequential = [university_explainer.explain(labeling) for labeling in labelings]
        batch = university_explainer.explain_batch(labelings)
        for expected, actual in zip(sequential, batch):
            assert actual.render(top_k=None) == expected.render(top_k=None)
            assert actual.candidate_count == expected.candidate_count

    def test_chase_strategy_query_for_query(
        self, chase_university_system, university_labeling, second_labeling, university_queries
    ):
        explainer = OntologyExplainer(chase_university_system)
        candidates = list(university_queries.values())
        labelings = [university_labeling, second_labeling]
        sequential = [
            explainer.explain(labeling, candidates=candidates) for labeling in labelings
        ]
        batch = explainer.explain_batch(labelings, candidates=candidates)
        for expected, actual in zip(sequential, batch):
            assert len(actual.explanations) == len(expected.explanations)
            for left, right in zip(expected.explanations, actual.explanations):
                assert str(left.query) == str(right.query)
                assert left.score == right.score
                assert left.rank == right.rank
                assert left.profile == right.profile

    def test_worker_count_does_not_change_results(
        self, university_explainer, university_labeling, second_labeling, university_queries
    ):
        candidates = list(university_queries.values())
        labelings = [university_labeling, second_labeling]
        single = university_explainer.explain_batch(labelings, candidates=candidates, max_workers=1)
        parallel = university_explainer.explain_batch(labelings, candidates=candidates, max_workers=6)
        for expected, actual in zip(single, parallel):
            assert actual.render(top_k=None) == expected.render(top_k=None)

    def test_empty_batch(self, university_explainer):
        assert university_explainer.explain_batch([]) == []


class TestBatchExplainerPrimitives:
    def test_rank_pool_matches_sequential_rank(
        self, university_system, university_labeling, university_queries
    ):
        candidates = list(university_queries.values())
        batch = BatchExplainer(university_system, max_workers=4)
        search = batch.search_for(university_labeling)
        sequential = search.rank(candidates)
        concurrent = batch.rank_pool(university_labeling, candidates)
        assert [str(s.query) for s in concurrent] == [str(s.query) for s in sequential]
        assert [s.score for s in concurrent] == [s.score for s in sequential]

    def test_score_pool_preserves_candidate_order(
        self, university_system, university_labeling, university_queries
    ):
        candidates = list(university_queries.values())
        batch = BatchExplainer(university_system, max_workers=4)
        scored = batch.score_pool(university_labeling, candidates)
        assert [str(s.query) for s in scored] == [str(q) for q in candidates]

    def test_shared_cache_is_reused_across_labelings(
        self, chase_university_system, university_labeling, second_labeling, university_queries
    ):
        explainer = OntologyExplainer(chase_university_system)
        candidates = list(university_queries.values())
        cache = chase_university_system.specification.engine.cache
        before = cache.stats.saturation_misses
        explainer.explain_batch(
            [university_labeling, second_labeling], candidates=candidates
        )
        after = cache.stats.saturation_misses
        # Both labelings cover the same five students, so the batch needs at
        # most one saturation per distinct border, however many pairs it scores.
        assert after - before <= 5
