"""Differential suite for fact-level database drift (deltas).

Pins four contracts of the delta path:

* **delta algebra** — :class:`~repro.obdm.database.DatabaseDelta`
  validation, deduplication, inversion, and the database's
  order-independent content fingerprint (apply + inverse restores it;
  a rejected delta leaves the database untouched);
* **in-place index patching** —
  :meth:`~repro.engine.kernel.UnifiedBorderIndex.apply_patch` yields an
  index observationally identical to one rebuilt from scratch over the
  new entries (supports, candidate masks, full mask), with tombstoned
  rows inert;
* **incremental = cold** — a resident
  :class:`~repro.service.ExplanationService` absorbing a seeded random
  add/remove delta stream serves rankings byte-identical to a cold
  service rebuilt over the post-delta database, across all four domain
  ontologies × {thread, process} reference executors;
* **the toggle is honest** — ``engine.delta.enabled = False`` routes
  every delta through the legacy full reset (cache clear + session
  drop) and still reproduces the cold rankings exactly, while an
  unrelated delta (fresh constants only) leaves every session warm.
"""

from __future__ import annotations

import random

import pytest

from repro.core.explainer import OntologyExplainer
from repro.core.labeling import Labeling
from repro.engine.kernel import UnifiedBorderIndex
from repro.errors import SchemaError
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    PROBE_SPECIFICATIONS,
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.obdm.database import DatabaseDelta, SourceDatabase
from repro.obdm.system import OBDMSystem
from repro.queries.atoms import Atom
from repro.queries.terms import Constant
from repro.service import ExplanationService

DOMAINS = PROBE_DOMAINS


def _fact(predicate: str, *values) -> Atom:
    return Atom(predicate, tuple(Constant(value) for value in values))


def _some_fact(database: SourceDatabase) -> Atom:
    return sorted(database.facts, key=str)[0]


# -- delta algebra + fingerprint ---------------------------------------------


class TestDatabaseDelta:
    def test_of_dedupes_and_sorts(self):
        a, b = _fact("R", "x", "y"), _fact("R", "x", "z")
        delta = DatabaseDelta.of([b, a, b], [])
        assert delta.added == tuple(sorted((a, b), key=str))
        assert delta.removed == ()
        assert len(delta) == 2 and not delta.is_empty()

    def test_add_remove_conflict_rejected(self):
        fact = _fact("R", "x", "y")
        with pytest.raises(SchemaError):
            DatabaseDelta.of([fact], [fact])

    def test_non_ground_atom_rejected(self):
        with pytest.raises(SchemaError):
            DatabaseDelta.of([Atom.of("R", "?x", "y")], [])

    def test_inverse_swaps_sides(self):
        delta = DatabaseDelta.of([_fact("R", "a", "b")], [_fact("S", "c")])
        inverse = delta.inverse()
        assert inverse.added == delta.removed
        assert inverse.removed == delta.added
        assert inverse.inverse() == delta

    def test_constants_and_predicates(self):
        delta = DatabaseDelta.of([_fact("R", "a", "b")], [_fact("S", "c")])
        assert delta.predicates() == frozenset({"R", "S"})
        assert delta.constants() == frozenset(
            {Constant("a"), Constant("b"), Constant("c")}
        )

    def test_apply_and_inverse_restore_fingerprint(self):
        system = build_probe_system("university")
        database = system.database
        before_facts = set(database.facts)
        before = database.fingerprint()
        removed = _some_fact(database)
        added = _fact(removed.predicate, *(["GHOST"] * len(removed.args)))
        delta = DatabaseDelta.of([added], [removed])
        database.apply_delta(delta)
        assert database.fingerprint() != before
        assert added in database.facts and removed not in database.facts
        database.apply_delta(delta.inverse())
        assert database.fingerprint() == before
        assert set(database.facts) == before_facts

    def test_fingerprint_is_order_independent(self):
        system = build_probe_system("university")
        database = system.database
        facts = sorted(database.facts, key=str)[:4]
        forward = database.copy()
        backward = database.copy()
        forward.apply_delta(DatabaseDelta.of([], facts))
        for fact in facts:
            forward.add_fact(fact)
        for fact in reversed(facts):
            backward.remove_fact(fact)
        for fact in reversed(facts):
            backward.add_fact(fact)
        assert forward.fingerprint() == backward.fingerprint() == database.fingerprint()

    def test_invalid_delta_leaves_database_untouched(self):
        system = build_probe_system("university")
        database = system.database
        before = database.fingerprint()
        phantom = _fact(_some_fact(database).predicate, "NO", "SUCH", "FACT")
        ghost = _fact(_some_fact(database).predicate, "A", "B", "C")
        with pytest.raises(SchemaError):
            database.apply_delta(DatabaseDelta.of([ghost], [phantom]))
        assert database.fingerprint() == before
        assert ghost not in database.facts


# -- in-place index patching --------------------------------------------------


def _entries(database: SourceDatabase, chunks: int):
    """Split the database's facts into *chunks* synthetic border columns."""
    facts = sorted(database.facts, key=str)
    size = max(1, len(facts) // chunks)
    return [
        (bit, frozenset(facts[bit * size : (bit + 1) * size])) for bit in range(chunks)
    ]


def _assert_same_index(patched: UnifiedBorderIndex, rebuilt: UnifiedBorderIndex, atoms):
    assert patched.full_mask == rebuilt.full_mask
    for atom in atoms:
        assert patched.support(atom) == rebuilt.support(atom), str(atom)
        patched_rows = {
            (args, mask) for args, mask in patched.candidates(atom) if mask
        }
        rebuilt_rows = {
            (args, mask) for args, mask in rebuilt.candidates(atom) if mask
        }
        assert patched_rows == rebuilt_rows, str(atom)


class TestApplyPatch:
    def test_patched_index_matches_rebuild(self):
        database = build_probe_system("university").database
        entries = _entries(database, 4)
        index = UnifiedBorderIndex(entries)
        probe_atoms = [fact for _bit, facts in entries for fact in sorted(facts, key=str)[:3]]
        for atom in probe_atoms:  # pre-warm the support memo
            index.support(atom)
        removed = sorted(entries[1][1], key=str)[0]
        replacement = _fact(removed.predicate, *(["PATCHED"] * len(removed.args)))
        new_facts = frozenset(entries[1][1] - {removed} | {replacement})
        touched = index.apply_patch([(1, new_facts)])
        assert removed.predicate in touched
        rebuilt = UnifiedBorderIndex(
            [(bit, new_facts if bit == 1 else facts) for bit, facts in entries]
        )
        _assert_same_index(index, rebuilt, probe_atoms + [replacement])

    def test_emptied_column_is_tombstoned(self):
        database = build_probe_system("university").database
        entries = _entries(database, 3)
        index = UnifiedBorderIndex(entries)
        index.apply_patch([(2, frozenset())])
        for _bit, facts in entries:
            for fact in facts:
                assert index.support(fact) & (1 << 2) == 0
        # full_mask keeps the bit: it records covered columns, not
        # non-empty ones.
        assert index.full_mask & (1 << 2)

    def test_empty_patch_is_noop(self):
        database = build_probe_system("university").database
        index = UnifiedBorderIndex(_entries(database, 2))
        before = index.full_mask
        assert index.apply_patch([]) == frozenset()
        assert index.full_mask == before


# -- incremental vs cold over random delta streams ----------------------------


def _random_delta_stream(
    database: SourceDatabase,
    labeling: Labeling,
    steps: int,
    rng: random.Random,
    facts_per_step: int = 2,
) -> list:
    """Seeded random add/remove stream anchored at labeled constants.

    Each step removes up to *facts_per_step* random facts mentioning a
    random labeled constant and inserts same-predicate replacements
    with one fresh constant, validated against a scratch copy so every
    delta is applicable at its position.
    """
    scratch = database.copy(name="stream_scratch")
    anchors = sorted(
        {constant for labeled in labeling.tuples() for constant in labeled},
        key=lambda constant: str(constant.value),
    )
    stream = []
    for step in range(steps):
        anchor = rng.choice(anchors)
        candidates = sorted(scratch.facts_with_constant(anchor), key=str)
        if not candidates:
            continue
        removed = rng.sample(candidates, min(facts_per_step, len(candidates)))
        added = []
        for j, fact in enumerate(removed):
            fresh = Constant(f"DRIFT{step}_{j}")
            swapped = tuple(
                fresh if position == len(fact.args) - 1 else value
                for position, value in enumerate(fact.args)
            )
            added.append(Atom(fact.predicate, swapped))
        delta = DatabaseDelta.of(added, removed)
        scratch.apply_delta(delta)
        stream.append(delta)
    return stream


def _drift_service(domain: str, database: SourceDatabase, enabled: bool = True):
    specification = PROBE_SPECIFICATIONS[domain]()
    specification.engine.delta.enabled = enabled
    system = OBDMSystem(specification, database, name=f"{domain}_drift")
    return ExplanationService(system, radius=1)


def _cold_render(domain: str, database: SourceDatabase, labeling, pool, executor: str):
    specification = PROBE_SPECIFICATIONS[domain]()
    system = OBDMSystem(specification, database, name=f"{domain}_cold")
    report = OntologyExplainer(system).explain_batch(
        [labeling], radius=1, candidates=pool, top_k=None, executor=executor
    )[0]
    return report.render(top_k=None)


def _assert_stream_identical(domain: str, executor: str, steps: int = 3, seed: int = 23):
    base = build_probe_system(domain)
    labeling = probe_labeling(base)
    pool = probe_pool(base)
    stream = _random_delta_stream(base.database, labeling, steps, random.Random(seed))
    assert stream, "the random stream generated no applicable delta"

    service = _drift_service(domain, base.database.copy())
    service.explain(labeling, candidates=pool, top_k=None)  # warm the session
    reference = base.database.copy()
    for delta in stream:
        service.apply_delta(delta)
        warm = service.explain(labeling, candidates=pool, top_k=None).render(top_k=None)
        reference.apply_delta(delta)
        cold = _cold_render(domain, reference.copy(), labeling, pool, executor)
        assert warm == cold, f"{domain}: incremental ranking diverged after {delta}"
    assert service.stats.database_deltas == len(stream)
    assert service.stats.delta_cold_resets == 0
    assert service.system.database.fingerprint() == reference.fingerprint()


@pytest.mark.service
class TestIncrementalMatchesCold:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_thread_reference(self, domain):
        _assert_stream_identical(domain, executor="thread")

    @pytest.mark.slow
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_process_reference(self, domain):
        _assert_stream_identical(domain, executor="process", steps=2)


@pytest.mark.service
class TestToggleAndLocality:
    @pytest.mark.parametrize("domain", DOMAINS)
    def test_toggle_off_reproduces_legacy_cold_path(self, domain):
        base = build_probe_system(domain)
        labeling = probe_labeling(base)
        pool = probe_pool(base)
        stream = _random_delta_stream(base.database, labeling, 2, random.Random(5))
        service = _drift_service(domain, base.database.copy(), enabled=False)
        service.explain(labeling, candidates=pool, top_k=None)
        reference = base.database.copy()
        for delta in stream:
            accounting = service.apply_delta(delta)
            assert accounting["borders_touched"] == 0
            assert accounting["sessions_updated"] == 0
            reference.apply_delta(delta)
            warm = service.explain(labeling, candidates=pool, top_k=None).render(top_k=None)
            cold = _cold_render(domain, reference.copy(), labeling, pool, "thread")
            assert warm == cold
        # Legacy semantics: every delta resets, every next request
        # cold-builds — exactly what a stateless deployment would do.
        assert service.stats.delta_cold_resets == len(stream)
        assert service.stats.cold_builds == 1 + len(stream)
        assert len(service._sessions) == 1

    def test_unrelated_delta_leaves_sessions_warm(self):
        base = build_probe_system("university")
        labeling = probe_labeling(base)
        pool = probe_pool(base)
        service = _drift_service("university", base.database.copy())
        service.explain(labeling, candidates=pool, top_k=None)
        (session,) = [session for _key, session in service._sessions.items()]
        matrix = session.matrix
        template = _some_fact(service.system.database)
        ghost = _fact(template.predicate, *[f"GHOST{i}" for i in range(len(template.args))])
        accounting = service.apply_delta(DatabaseDelta.of([ghost], []))
        assert accounting["borders_touched"] == 0
        assert accounting["sessions_updated"] == 0
        assert session.matrix is matrix  # the matrix object survived untouched
        before = service.stats.warm_hits
        report = service.explain(labeling, candidates=pool, top_k=None)
        assert service.stats.warm_hits == before + 1
        cold = _cold_render(
            "university", service.system.database.copy(), labeling, pool, "thread"
        )
        assert report.render(top_k=None) == cold

    def test_empty_delta_is_noop(self):
        base = build_probe_system("university")
        service = _drift_service("university", base.database.copy())
        before = service.system.database.fingerprint()
        accounting = service.apply_delta(DatabaseDelta.of([], []))
        assert accounting == {
            "added": 0,
            "removed": 0,
            "borders_touched": 0,
            "sessions_updated": 0,
            "cache_invalidated": 0,
        }
        assert service.stats.database_deltas == 0
        assert service.system.database.fingerprint() == before
