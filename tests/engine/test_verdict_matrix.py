"""Differential tests: bitset verdict engine vs. the legacy per-pair path.

The bitset path (``repro.engine.verdicts``) must be *indistinguishable*
from the legacy per-pair path: same scores, same rankings, same rendered
reports, same profiles — for all four domain ontologies, with the
evaluation cache on or off, and with process-sharded scoring on top.
The legacy path with the shared cache enabled is the reference; every
other cell of the {legacy, bitset} × {cache on, off} matrix (the
``scoring_path`` fixture from ``tests/conftest.py``) is compared against
it.
"""

from __future__ import annotations

import pytest

from repro.core.labeling import Labeling
from repro.core.matching import MatchEvaluator, MatchProfile
from repro.core.explainer import OntologyExplainer
from repro.engine.verdicts import BitsetVerdictProfile, BorderColumns, VerdictMatrix
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries


# The per-domain probe systems/pools are shared with the E12 experiment
# and the kernel differential suite (repro.experiments.kernel_exp) — one
# definition, so the three can never validate diverging workloads.
DOMAINS = PROBE_DOMAINS
_system = build_probe_system
_labeling = probe_labeling
_candidate_pool = probe_pool


_REFERENCE_CACHE = {}


def _reference_report(domain: str):
    """The legacy-path (cache on) report, computed once per domain."""
    if domain not in _REFERENCE_CACHE:
        system = _system(domain)
        system.specification.engine.verdicts.enabled = False
        report = OntologyExplainer(system).explain(
            _labeling(system), candidates=_candidate_pool(system), top_k=None
        )
        _REFERENCE_CACHE[domain] = report
    return _REFERENCE_CACHE[domain]


# -- the differential matrix --------------------------------------------------


@pytest.mark.parametrize("domain", DOMAINS)
def test_all_paths_identical_to_legacy(domain, scoring_path):
    """Scores, rankings, reports and profiles across {path} × {cache}."""
    reference = _reference_report(domain)
    system = _system(domain)
    scoring_path.apply(system.specification)
    report = OntologyExplainer(system).explain(
        _labeling(system), candidates=_candidate_pool(system), top_k=None
    )
    assert report.render(top_k=None) == reference.render(top_k=None), (
        f"{domain}: {scoring_path.label} report diverged from the legacy path"
    )
    for expected, actual in zip(reference.explanations, report.explanations):
        assert str(actual.query) == str(expected.query)
        assert actual.score == expected.score
        assert actual.criterion_values == expected.criterion_values
        assert actual.profile == expected.profile, (
            f"{domain}: {scoring_path.label} profile diverged for {expected.query}"
        )


@pytest.mark.slow
@pytest.mark.parametrize("domain", DOMAINS)
def test_process_sharding_identical_to_legacy(domain):
    """Sharded scoring across worker processes stays sequential-identical."""
    reference = _reference_report(domain)
    system = _system(domain)
    labeling = _labeling(system)
    pool = _candidate_pool(system)
    reports = OntologyExplainer(system).explain_batch(
        [labeling], candidates=pool, executor="process", max_workers=2, top_k=None
    )
    assert len(reports) == 1
    assert reports[0].render(top_k=None) == reference.render(top_k=None), (
        f"{domain}: process-sharded report diverged from the legacy path"
    )


@pytest.mark.slow
def test_process_sharding_on_bitset_and_legacy_paths():
    """Sharding composes with both scoring paths and several labelings."""
    system = _system("university")
    labeling = _labeling(system)
    second = Labeling(
        positives=sorted(system.domain(), key=repr)[:2],
        negatives=sorted(system.domain(), key=repr)[4:6],
        name="probe_b",
    )
    pool = _candidate_pool(system)
    explainer = OntologyExplainer(system)
    sequential = explainer.explain_batch(
        [labeling, second], candidates=pool, max_workers=1, top_k=None
    )
    for use_bitset in (True, False):
        system.specification.engine.verdicts.enabled = use_bitset
        sharded = explainer.explain_batch(
            [labeling, second], candidates=pool, executor="process", max_workers=2, top_k=None
        )
        for expected, actual in zip(sequential, sharded):
            assert actual.render(top_k=None) == expected.render(top_k=None)


# -- unit tests of the matrix itself ------------------------------------------


class TestVerdictMatrixUnit:
    @pytest.fixture(scope="class")
    def setup(self):
        system = _system("university")
        labeling = _labeling(system)
        evaluator = MatchEvaluator(system, radius=1)
        columns = BorderColumns.from_labeling(evaluator, labeling)
        matrix = VerdictMatrix(evaluator, columns)
        return system, labeling, evaluator, columns, matrix

    def test_rows_agree_with_per_pair_verdicts(self, setup):
        system, labeling, evaluator, columns, matrix = setup
        for query in _candidate_pool(system):
            row = matrix.row(query)
            for bit, border in enumerate(columns.borders):
                assert bool(row >> bit & 1) == evaluator.matches_border(query, border)

    def test_ucq_row_is_or_of_disjunct_rows(self, setup):
        system, _, _, _, matrix = setup
        pool = _candidate_pool(system)
        cqs = [q for q in pool if isinstance(q, ConjunctiveQuery)][:2]
        union = UnionOfConjunctiveQueries.of(cqs)
        assert matrix.row(union) == matrix.row(cqs[0]) | matrix.row(cqs[1])

    def test_bitset_profile_counts_match_materialized_sets(self, setup):
        system, labeling, evaluator, _, matrix = setup
        for query in _candidate_pool(system):
            profile = matrix.profile(query)
            assert isinstance(profile, BitsetVerdictProfile)
            materialized = profile.materialize()
            assert isinstance(materialized, MatchProfile)
            assert profile.true_positives == materialized.true_positives
            assert profile.false_negatives == materialized.false_negatives
            assert profile.false_positives == materialized.false_positives
            assert profile.true_negatives == materialized.true_negatives
            assert profile == materialized
            assert hash(profile) == hash(materialized)
            # And both agree with the per-pair evaluator.
            assert materialized == evaluator.profile(query, labeling)

    def test_column_masks_are_disjoint_and_cover_the_width(self, setup):
        _, labeling, _, columns, _ = setup
        assert columns.positive_count == len(labeling.positives)
        assert columns.negative_count == len(labeling.negatives)
        assert columns.positives_mask & columns.negatives_mask == 0
        assert columns.positives_mask | columns.negatives_mask == (1 << columns.width) - 1

    def test_build_fills_rows_in_one_pass(self, setup):
        system, labeling, evaluator, _, _ = setup
        fresh_columns = BorderColumns.from_labeling(evaluator, labeling)
        system.specification.engine.cache.enabled = False
        try:
            matrix = VerdictMatrix(evaluator, fresh_columns)
            pool = _candidate_pool(system)
            matrix.build(pool)
            # UCQs are stored too (via OR), on top of their CQ disjuncts.
            assert matrix.known_rows() >= len(pool)
        finally:
            system.specification.engine.cache.enabled = True

    def test_shared_rows_are_reused_across_scorers(self):
        system = _system("university")
        labeling = _labeling(system)
        pool = _candidate_pool(system)
        explainer = OntologyExplainer(system)
        explainer.explain(labeling, candidates=pool)
        stats = system.specification.engine.cache.stats
        misses_after_first = stats.verdict_row_misses
        explainer.explain(labeling, candidates=pool)
        assert stats.verdict_row_misses == misses_after_first, (
            "a second explain over the same labeling recomputed verdict rows"
        )
        assert stats.verdict_row_hits > 0
