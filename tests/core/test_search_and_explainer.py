"""Tests for candidate generation, refinement, best-description search,
separability and the OntologyExplainer façade (Definition 3.7, Example 3.8)."""

import pytest

from repro.core.best_describe import BestDescriptionSearch, QueryScorer, ScoredQuery
from repro.core.candidates import CandidateConfig, CandidateGenerator
from repro.core.explainer import OntologyExplainer
from repro.core.labeling import Labeling
from repro.core.matching import MatchEvaluator
from repro.core.refinement import RefinementConfig, RefinementSearch
from repro.core.report import Explanation, ExplanationReport
from repro.core.scoring import example_3_8_expression
from repro.core.separability import SeparabilityChecker
from repro.errors import ExplanationError
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq
from repro.queries.ucq import UnionOfConjunctiveQueries


class TestExample38Scores:
    """The Z-scores of Example 3.8, computed through the public API."""

    @pytest.mark.parametrize(
        "weights, expected",
        [
            ((1, 1, 1), {"q1": 0.694, "q2": 0.5, "q3": 0.833}),
            ((3, 1, 1), {"q1": 0.717, "q2": 0.5, "q3": 0.7}),
        ],
    )
    def test_scores(self, university_explainer, university_labeling, university_queries, weights, expected):
        expression = example_3_8_expression(*weights)
        for name, query in university_queries.items():
            scored = university_explainer.score(
                query, university_labeling, radius=1, expression=expression
            )
            assert scored.score == pytest.approx(expected[name], abs=0.002)

    def test_paper_winner_equal_weights(self, university_explainer, university_labeling, university_queries):
        report = university_explainer.explain(
            university_labeling,
            radius=1,
            expression=example_3_8_expression(1, 1, 1),
            candidates=list(university_queries.values()),
        )
        assert str(report.best.query).startswith("q3")

    def test_paper_winner_alpha_3(self, university_explainer, university_labeling, university_queries):
        report = university_explainer.explain(
            university_labeling,
            radius=1,
            expression=example_3_8_expression(3, 1, 1),
            candidates=list(university_queries.values()),
        )
        assert str(report.best.query).startswith("q1")


class TestCandidateGenerator:
    def test_pool_contains_paper_queries(self, university_system, university_labeling):
        generator = CandidateGenerator(
            university_system, radius=1, config=CandidateConfig(max_atoms=3, max_candidates=2000)
        )
        pool = generator.generate(university_labeling)
        signatures = {query.signature() for query in pool}
        q2 = parse_cq("q(x) :- studies(x, 'Math')")
        q3 = parse_cq("q(x) :- likes(x, 'Science')")
        assert q2.signature() in signatures
        assert q3.signature() in signatures

    def test_pool_respects_max_atoms(self, university_system, university_labeling):
        generator = CandidateGenerator(
            university_system, radius=1, config=CandidateConfig(max_atoms=2, max_candidates=500)
        )
        pool = generator.generate(university_labeling)
        assert pool and all(query.atom_count() <= 2 for query in pool)

    def test_pool_respects_cap(self, university_system, university_labeling):
        generator = CandidateGenerator(
            university_system, radius=1, config=CandidateConfig(max_candidates=10)
        )
        assert len(generator.generate(university_labeling)) <= 10

    def test_all_candidates_have_labeling_arity(self, university_system, university_labeling):
        generator = CandidateGenerator(university_system, radius=1)
        pool = generator.generate(university_labeling)
        assert all(query.arity == university_labeling.arity for query in pool)

    def test_most_specific_query_option(self, university_system, university_labeling):
        generator = CandidateGenerator(
            university_system,
            radius=1,
            config=CandidateConfig(include_most_specific=True, max_candidates=3000),
        )
        pool = generator.generate(university_labeling)
        assert max(query.atom_count() for query in pool) >= 3


class TestRefinementSearch:
    def test_beam_search_finds_good_query(self, university_system, university_labeling):
        evaluator = MatchEvaluator(university_system, 1)
        search = BestDescriptionSearch(university_system, university_labeling)
        refinement = RefinementSearch(
            university_system,
            university_labeling,
            evaluator,
            score_function=search.scorer.score_value,
            config=RefinementConfig(beam_width=6, max_atoms=2, max_iterations=3),
        )
        results = refinement.search()
        assert results
        best_query, best_score = results[0]
        assert best_score >= 0.8  # likes(x, 'Science') scores 0.833

    def test_initial_queries_are_single_atoms(self, university_system, university_labeling):
        evaluator = MatchEvaluator(university_system, 1)
        search = BestDescriptionSearch(university_system, university_labeling)
        refinement = RefinementSearch(
            university_system, university_labeling, evaluator, search.scorer.score_value
        )
        assert all(query.atom_count() == 1 for query in refinement.initial_queries())

    def test_non_unary_labeling_rejected(self, university_system):
        binary = Labeling([("A10", "Math")], [("E25", "Math")])
        evaluator = MatchEvaluator(university_system, 1)
        with pytest.raises(ExplanationError):
            RefinementSearch(university_system, binary, evaluator, lambda q: 0.0)


class TestBestDescriptionSearch:
    def test_rank_is_sorted_and_deterministic(self, university_system, university_labeling, university_queries):
        search = BestDescriptionSearch(university_system, university_labeling)
        ranking = search.rank(list(university_queries.values()))
        scores = [entry.score for entry in ranking]
        assert scores == sorted(scores, reverse=True)
        again = search.rank(list(university_queries.values()))
        assert [str(e.query) for e in ranking] == [str(e.query) for e in again]

    def test_best_requires_candidates(self, university_system, university_labeling):
        search = BestDescriptionSearch(university_system, university_labeling)
        with pytest.raises(ExplanationError):
            search.best([])

    def test_expression_criteria_consistency_checked(self, university_system, university_labeling):
        with pytest.raises(ExplanationError):
            BestDescriptionSearch(
                university_system,
                university_labeling,
                criteria=("delta1",),
                expression=example_3_8_expression(),
            )

    def test_search_enumerate_beats_paper_queries(self, university_system, university_labeling, university_queries):
        search = BestDescriptionSearch(university_system, university_labeling)
        ranking = search.search(
            strategy="enumerate",
            candidate_config=CandidateConfig(max_atoms=2, max_candidates=300),
            extra_candidates=list(university_queries.values()),
        )
        assert ranking[0].score >= 0.833 - 1e-9

    def test_unknown_strategy_rejected(self, university_system, university_labeling):
        search = BestDescriptionSearch(university_system, university_labeling)
        with pytest.raises(ExplanationError):
            search.search(strategy="magic")

    def test_best_ucq_improves_or_matches_best_cq(self, university_system, university_labeling):
        search = BestDescriptionSearch(
            university_system,
            university_labeling,
            criteria=("delta1", "delta4", "delta6"),
            expression=example_3_8_expression(2, 2, 1).__class__.of(
                {"delta1": 2.0, "delta4": 2.0, "delta6": 1.0}
            ),
        )
        cqs = [
            parse_cq("q(x) :- studies(x, 'Math')"),
            parse_cq("q(x) :- likes(x, 'Science')"),
            parse_cq("q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')"),
        ]
        best_cq = search.best(cqs)
        best_union = search.best_ucq(cqs, max_disjuncts=3)
        assert best_union.score >= best_cq.score
        if isinstance(best_union.query, UnionOfConjunctiveQueries):
            assert best_union.query.disjunct_count() <= 3


class TestSeparability:
    def test_paper_claim_no_perfect_cq(self, university_system, university_labeling):
        checker = SeparabilityChecker(university_system, university_labeling, radius=1)
        result = checker.decide_cq_separability()
        assert result.separable is False

    def test_candidate_based_check(self, university_system, university_labeling, university_queries):
        checker = SeparabilityChecker(university_system, university_labeling, radius=1)
        assert checker.find_separator(university_queries.values()) is None
        result = checker.check_candidates(university_queries.values())
        assert result.separable is None  # inconclusive, not a proof

    def test_separable_case_with_witness(self, university_system):
        # Rome-students vs a Milan-student IS separable by q1.
        labeling = Labeling(["A10", "B80", "D50"], ["E25", "C12"])
        checker = SeparabilityChecker(university_system, labeling, radius=1)
        result = checker.decide_cq_separability()
        assert result.separable is True
        # The canonical witness necessarily exploits the Rome location,
        # which is what distinguishes the positives from the negatives.
        assert result.witness is not None
        assert "locatedIn" in str(result.witness)

    def test_check_query_against_paper_queries(self, university_system, university_labeling, university_queries):
        checker = SeparabilityChecker(university_system, university_labeling, radius=1)
        assert not checker.check_query(university_queries["q1"])


class TestOntologyExplainerFacade:
    def test_explain_with_generated_candidates(self, university_explainer, university_labeling):
        report = university_explainer.explain(
            university_labeling,
            radius=1,
            candidate_config=CandidateConfig(max_atoms=2, max_candidates=200),
            top_k=5,
        )
        assert isinstance(report, ExplanationReport)
        assert 1 <= len(report) <= 5
        assert report.best.score >= 0.833 - 1e-9
        assert report.best.rank == 1

    def test_explain_with_textual_candidates(self, university_explainer, university_labeling):
        report = university_explainer.explain(
            university_labeling,
            candidates=[
                "q1(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')",
                "q2(x) :- studies(x, 'Math')",
            ],
        )
        assert len(report) == 2

    def test_best_query_wrapper(self, university_explainer, university_labeling):
        best = university_explainer.best_query(
            university_labeling,
            candidates=["q3(x) :- likes(x, 'Science')"],
        )
        assert isinstance(best, Explanation)
        assert best.is_perfect() is False

    def test_profile_accepts_text(self, university_explainer, university_labeling):
        profile = university_explainer.profile(
            "q(x) :- studies(x, 'Math')", university_labeling
        )
        assert profile.true_positives == 2

    def test_separability_entry_point(self, university_explainer, university_labeling):
        result = university_explainer.separability(university_labeling, radius=1)
        assert result.separable is False

    def test_report_rendering_and_rows(self, university_explainer, university_labeling, university_queries):
        report = university_explainer.explain(
            university_labeling, candidates=list(university_queries.values())
        )
        text = report.render()
        assert "Explanation report" in text and "q3" in text
        rows = report.to_rows()
        assert len(rows) == 3
        assert {"rank", "score", "query"} <= set(rows[0])


class TestSeparabilityEvaluatesCandidatesOnce:
    """Regression: exact=False used to parse and profile candidates twice."""

    def _count_check_query(self, monkeypatch):
        calls = []
        original = SeparabilityChecker.check_query

        def counting(checker, query):
            calls.append(str(query))
            return original(checker, query)

        monkeypatch.setattr(SeparabilityChecker, "check_query", counting)
        return calls

    def test_candidates_profiled_exactly_once(
        self, university_explainer, university_labeling, university_queries, monkeypatch
    ):
        calls = self._count_check_query(monkeypatch)
        result = university_explainer.separability(
            university_labeling,
            radius=1,
            candidates=list(university_queries.values()),
            exact=False,
        )
        assert len(calls) == len(university_queries)
        assert result.separable is None
        assert result.method == "candidates"

    def test_no_candidates_means_no_evaluation(
        self, university_explainer, university_labeling, monkeypatch
    ):
        calls = self._count_check_query(monkeypatch)
        result = university_explainer.separability(
            university_labeling, radius=1, candidates=None, exact=False
        )
        assert calls == []
        assert result.separable is None
        assert result.method == "candidates"

    def test_exact_decision_unaffected(self, university_explainer, university_labeling):
        result = university_explainer.separability(university_labeling, radius=1, exact=True)
        assert result.separable is False
