"""Unit tests for classifier labelings λ."""

import pytest

from repro.core.labeling import NEGATIVE, POSITIVE, Labeling, normalize_tuple
from repro.errors import ExplanationError
from repro.queries.terms import Constant


class TestNormalizeTuple:
    def test_scalar_becomes_unary_tuple(self):
        assert normalize_tuple("A10") == (Constant("A10"),)

    def test_sequence_preserved(self):
        assert normalize_tuple(["A10", "Math"]) == (Constant("A10"), Constant("Math"))

    def test_constants_pass_through(self):
        assert normalize_tuple(Constant("A10")) == (Constant("A10"),)

    def test_empty_tuple_rejected(self):
        with pytest.raises(ExplanationError):
            normalize_tuple([])

    def test_bool_and_int_normalize_distinctly(self):
        # bool is an int subclass, so without the type tag in Constant
        # equality True/1 and False/0 collapsed to one constant each.
        assert normalize_tuple(True) != normalize_tuple(1)
        assert normalize_tuple(False) != normalize_tuple(0)
        assert normalize_tuple(True) == normalize_tuple(True)
        assert len({normalize_tuple(True)[0], normalize_tuple(1)[0]}) == 2


class TestBooleanLabelings:
    """COMPAS-style boolean feature labelings vs 0/1-valued features."""

    def test_bool_vs_int_is_not_a_conflict(self):
        labeling = Labeling(positives=[True], negatives=[1])
        assert labeling.label_of(True) == POSITIVE
        assert labeling.label_of(1) == NEGATIVE
        assert labeling.label_of(0) is None

    def test_false_vs_zero_is_not_a_conflict(self):
        labeling = Labeling(positives=[False], negatives=[0])
        assert labeling.label_of(False) == POSITIVE
        assert labeling.label_of(0) == NEGATIVE

    def test_same_bool_on_both_sides_still_conflicts(self):
        with pytest.raises(ExplanationError):
            Labeling(positives=[True], negatives=[True])


class TestLabeling:
    def test_paper_example(self, university_labeling):
        assert len(university_labeling.positives) == 4
        assert len(university_labeling.negatives) == 1
        assert university_labeling.arity == 1

    def test_label_of(self, university_labeling):
        assert university_labeling.label_of("A10") == POSITIVE
        assert university_labeling("E25") == NEGATIVE
        assert university_labeling("Z99") is None  # partial function

    def test_overlap_rejected(self):
        with pytest.raises(ExplanationError):
            Labeling(["A10"], ["A10"])

    def test_mixed_arities_rejected(self):
        with pytest.raises(ExplanationError):
            Labeling([("a", "b")], ["c"])

    def test_from_dict(self):
        labeling = Labeling.from_dict({"a": 1, "b": -1})
        assert labeling.label_of("a") == POSITIVE
        assert labeling.label_of("b") == NEGATIVE

    def test_from_dict_invalid_label(self):
        with pytest.raises(ExplanationError):
            Labeling.from_dict({"a": 2})

    def test_from_predictions(self):
        labeling = Labeling.from_predictions(["a", "b", "c"], [1, -1, 1])
        assert len(labeling.positives) == 2

    def test_from_predictions_length_mismatch(self):
        with pytest.raises(ExplanationError):
            Labeling.from_predictions(["a"], [1, -1])

    def test_add_positive_and_negative(self):
        labeling = Labeling()
        labeling.add_positive("a")
        labeling.add_negative("b")
        assert len(labeling) == 2
        with pytest.raises(ExplanationError):
            labeling.add_negative("a")

    def test_inverted(self, university_labeling):
        inverted = university_labeling.inverted()
        assert inverted.label_of("E25") == POSITIVE
        assert inverted.label_of("A10") == NEGATIVE

    def test_iteration_is_deterministic(self, university_labeling):
        assert list(university_labeling) == list(university_labeling)

    def test_validate_against_database(self, university_system, university_labeling):
        assert university_labeling.validate_against(university_system.database) == []
        stranger = Labeling(["Z99"], [])
        assert stranger.validate_against(university_system.database)

    def test_restricted_to_domain(self, university_system):
        labeling = Labeling(["A10", "Z99"], ["E25"])
        restricted = labeling.restricted_to_domain(university_system.database)
        assert len(restricted.positives) == 1
        assert len(restricted.negatives) == 1

    def test_tuples_union(self, university_labeling):
        assert len(university_labeling.tuples()) == 5
