"""Unit tests for J-matching (Definition 3.4) and match profiles."""

import pytest

from repro.core.matching import MatchEvaluator, MatchProfile
from repro.errors import ExplanationError
from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.terms import Constant


def key(value):
    return (Constant(value),)


class TestExample36Matching:
    """Definition 3.4 applied to the paper's queries and borders."""

    def test_q1_matches(self, university_evaluator, university_queries):
        q1 = university_queries["q1"]
        assert university_evaluator.matches(q1, "A10")
        assert university_evaluator.matches(q1, "B80")
        assert university_evaluator.matches(q1, "D50")
        assert not university_evaluator.matches(q1, "C12")
        assert not university_evaluator.matches(q1, "E25")

    def test_q2_matches(self, university_evaluator, university_queries):
        q2 = university_queries["q2"]
        assert university_evaluator.matches(q2, "A10")
        assert university_evaluator.matches(q2, "B80")
        assert university_evaluator.matches(q2, "E25")
        assert not university_evaluator.matches(q2, "C12")
        assert not university_evaluator.matches(q2, "D50")

    def test_q3_matches_via_ontology(self, university_evaluator, university_queries):
        q3 = university_queries["q3"]
        assert university_evaluator.matches(q3, "C12")
        assert university_evaluator.matches(q3, "D50")
        assert not university_evaluator.matches(q3, "A10")
        assert not university_evaluator.matches(q3, "E25")

    def test_match_set(self, university_evaluator, university_labeling, university_queries):
        matched = university_evaluator.match_set(
            university_queries["q1"], university_labeling.positives
        )
        assert matched == {key("A10"), key("B80"), key("D50")}

    def test_profile_counts(self, university_evaluator, university_labeling, university_queries):
        profile = university_evaluator.profile(university_queries["q1"], university_labeling)
        assert profile.true_positives == 3
        assert profile.false_negatives == 1
        assert profile.false_positives == 0
        assert profile.true_negatives == 1

    def test_profile_fractions_match_paper(self, university_evaluator, university_labeling, university_queries):
        q1 = university_evaluator.profile(university_queries["q1"], university_labeling)
        q2 = university_evaluator.profile(university_queries["q2"], university_labeling)
        q3 = university_evaluator.profile(university_queries["q3"], university_labeling)
        assert q1.positive_coverage() == pytest.approx(3 / 4)
        assert q1.negative_exclusion() == pytest.approx(1.0)
        assert q2.positive_coverage() == pytest.approx(2 / 4)
        assert q2.negative_exclusion() == pytest.approx(0.0)
        assert q3.positive_coverage() == pytest.approx(2 / 4)
        assert q3.negative_exclusion() == pytest.approx(1.0)


class TestMatchingMechanics:
    def test_arity_mismatch_is_false(self, university_evaluator):
        binary = parse_cq("q(x, y) :- studies(x, y)")
        assert not university_evaluator.matches(binary, "A10")

    def test_ucq_matching(self, university_evaluator):
        ucq = parse_ucq("q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')")
        assert university_evaluator.matches(ucq, "A10")
        assert university_evaluator.matches(ucq, "C12")

    def test_radius_zero_has_no_location_atom(self, university_evaluator, university_queries):
        # At radius 0 the border of A10 lacks LOC(TV, Rome), so q1 cannot match.
        assert not university_evaluator.matches(university_queries["q1"], "A10", radius=0)
        assert university_evaluator.matches(university_queries["q1"], "A10", radius=1)

    def test_negative_radius_rejected(self, university_system):
        with pytest.raises(ExplanationError):
            MatchEvaluator(university_system, radius=-1)

    def test_matches_border_object(self, university_evaluator, university_queries):
        border = university_evaluator.border_of("A10")
        assert university_evaluator.matches_border(university_queries["q2"], border)


class TestProposition35:
    """Proposition 3.5: matching is monotone in the radius."""

    @pytest.mark.parametrize("query_name", ["q1", "q2", "q3"])
    @pytest.mark.parametrize("student", ["A10", "B80", "C12", "D50", "E25"])
    def test_monotone_for_all_pairs(
        self, university_evaluator, university_queries, query_name, student
    ):
        assert university_evaluator.is_monotone_in_radius(
            university_queries[query_name], student, max_radius=3
        )

    def test_monotone_explicit_sequence(self, university_evaluator, university_queries):
        q1 = university_queries["q1"]
        results = [university_evaluator.matches(q1, "A10", radius=r) for r in range(4)]
        # Once True, stays True.
        first_true = results.index(True)
        assert all(results[first_true:])


class TestMatchProfileMetrics:
    def build(self):
        return MatchProfile(
            positives_matched=frozenset({key("a"), key("b")}),
            positives_unmatched=frozenset({key("c")}),
            negatives_matched=frozenset({key("d")}),
            negatives_unmatched=frozenset({key("e"), key("f")}),
        )

    def test_counts(self):
        profile = self.build()
        assert profile.positive_total == 3
        assert profile.negative_total == 3

    def test_precision_recall_f1_accuracy(self):
        profile = self.build()
        assert profile.precision() == pytest.approx(2 / 3)
        assert profile.recall() == pytest.approx(2 / 3)
        assert profile.f1() == pytest.approx(2 / 3)
        assert profile.accuracy() == pytest.approx(4 / 6)

    def test_perfect_separation_flag(self):
        perfect = MatchProfile(
            positives_matched=frozenset({key("a")}),
            positives_unmatched=frozenset(),
            negatives_matched=frozenset(),
            negatives_unmatched=frozenset({key("b")}),
        )
        assert perfect.is_perfect_separation()
        assert not self.build().is_perfect_separation()

    def test_empty_negative_set_conventions(self):
        profile = MatchProfile(
            positives_matched=frozenset({key("a")}),
            positives_unmatched=frozenset(),
            negatives_matched=frozenset(),
            negatives_unmatched=frozenset(),
        )
        assert profile.negative_exclusion() == 1.0
        assert profile.positive_coverage() == 1.0
