"""Unit tests for criteria δ1-δ6 and scoring expressions Z (Example 3.8)."""

import pytest

from repro.core.criteria import (
    ACCURACY,
    DEFAULT_REGISTRY,
    DELTA_1,
    DELTA_2,
    DELTA_3,
    DELTA_4,
    DELTA_5,
    DELTA_6,
    PAPER_CRITERIA,
    Criterion,
    CriteriaRegistry,
    EvaluationContext,
    evaluate_criteria,
)
from repro.core.scoring import (
    CallableExpression,
    HarmonicMean,
    MinScore,
    WeightedAverage,
    WeightedProduct,
    balanced_expression,
    example_3_8_expression,
    fidelity_first_expression,
)
from repro.errors import CriterionError, ScoringError
from repro.queries.parser import parse_cq, parse_ucq


@pytest.fixture()
def contexts(university_evaluator, university_labeling, university_queries):
    """EvaluationContexts for q1, q2, q3 of the running example."""
    built = {}
    for name, query in university_queries.items():
        profile = university_evaluator.profile(query, university_labeling)
        built[name] = EvaluationContext(query, profile, university_labeling, 1)
    return built


class TestPaperCriteria:
    def test_delta1_values(self, contexts):
        assert DELTA_1.evaluate(contexts["q1"]) == pytest.approx(3 / 4)
        assert DELTA_1.evaluate(contexts["q2"]) == pytest.approx(2 / 4)
        assert DELTA_1.evaluate(contexts["q3"]) == pytest.approx(2 / 4)

    def test_delta4_values(self, contexts):
        assert DELTA_4.evaluate(contexts["q1"]) == pytest.approx(1.0)
        assert DELTA_4.evaluate(contexts["q2"]) == pytest.approx(0.0)
        assert DELTA_4.evaluate(contexts["q3"]) == pytest.approx(1.0)

    def test_delta5_values(self, contexts):
        assert DELTA_5.evaluate(contexts["q1"]) == pytest.approx(1 / 3)
        assert DELTA_5.evaluate(contexts["q2"]) == pytest.approx(1.0)
        assert DELTA_5.evaluate(contexts["q3"]) == pytest.approx(1.0)

    def test_delta2_equals_delta1_under_default_normalisation(self, contexts):
        for context in contexts.values():
            assert DELTA_2.evaluate(context) == pytest.approx(DELTA_1.evaluate(context))

    def test_delta3_equals_delta4_under_default_normalisation(self, contexts):
        for context in contexts.values():
            assert DELTA_3.evaluate(context) == pytest.approx(DELTA_4.evaluate(context))

    def test_delta6_on_cq_and_ucq(self, contexts, university_labeling, university_evaluator):
        assert DELTA_6.evaluate(contexts["q1"]) == 1.0
        ucq = parse_ucq("q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')")
        profile = university_evaluator.profile(ucq, university_labeling)
        context = EvaluationContext(ucq, profile, university_labeling, 1)
        assert DELTA_6.evaluate(context) == pytest.approx(0.5)

    def test_evaluate_criteria_bundle(self, contexts):
        values = evaluate_criteria(PAPER_CRITERIA, contexts["q1"])
        assert set(values) == {c.key for c in PAPER_CRITERIA}

    def test_out_of_range_criterion_rejected(self, contexts):
        bad = Criterion("bad", "returns 2", lambda context: 2.0)
        with pytest.raises(CriterionError):
            bad.evaluate(contexts["q1"])


class TestRegistry:
    def test_default_registry_contains_paper_criteria(self):
        for criterion in PAPER_CRITERIA:
            assert criterion.key in DEFAULT_REGISTRY

    def test_resolve_mixed(self):
        resolved = DEFAULT_REGISTRY.resolve(["delta1", DELTA_4])
        assert [c.key for c in resolved] == ["delta1", "delta4"]

    def test_unknown_key_rejected(self):
        with pytest.raises(CriterionError):
            DEFAULT_REGISTRY.get("nonexistent")

    def test_register_function(self):
        registry = CriteriaRegistry()
        registry.register_function("const", "always one", lambda context: 1.0)
        assert "const" in registry

    def test_conflicting_registration_rejected(self):
        registry = CriteriaRegistry()
        with pytest.raises(CriterionError):
            registry.register(Criterion("delta1", "different", lambda context: 0.0))


class TestScoringExpressions:
    VALUES = {"delta1": 0.75, "delta4": 1.0, "delta5": 1 / 3}

    def test_example_3_8_weighted_average(self):
        expression = example_3_8_expression(1, 1, 1)
        assert expression.score(self.VALUES) == pytest.approx((0.75 + 1.0 + 1 / 3) / 3)

    def test_weighted_average_weights(self):
        expression = example_3_8_expression(3, 1, 1)
        expected = (3 * 0.75 + 1.0 + 1 / 3) / 5
        assert expression.score(self.VALUES) == pytest.approx(expected)

    def test_missing_value_rejected(self):
        with pytest.raises(ScoringError):
            example_3_8_expression().score({"delta1": 1.0})

    def test_invalid_weights_rejected(self):
        with pytest.raises(ScoringError):
            WeightedAverage.of({})
        with pytest.raises(ScoringError):
            WeightedAverage.of({"delta1": -1.0, "delta4": 1.0, "delta5": 0.0})

    def test_weighted_product(self):
        expression = WeightedProduct.of({"delta1": 1.0, "delta4": 1.0})
        assert expression.score({"delta1": 0.5, "delta4": 0.5}) == pytest.approx(0.25)

    def test_min_and_harmonic(self):
        assert MinScore(("delta1", "delta4")).score({"delta1": 0.2, "delta4": 0.9}) == 0.2
        harmonic = HarmonicMean(("delta1", "delta4")).score({"delta1": 0.5, "delta4": 1.0})
        assert harmonic == pytest.approx(2 / 3)
        assert HarmonicMean(("delta1",)).score({"delta1": 0.0}) == 0.0

    def test_callable_expression(self):
        expression = CallableExpression(("delta1",), lambda values: values["delta1"] ** 2)
        assert expression.score({"delta1": 0.5}) == pytest.approx(0.25)

    def test_ready_made_expressions(self):
        assert set(balanced_expression().variables()) == {"delta1", "delta4"}
        assert "delta5" in fidelity_first_expression().variables()


class TestWeightVectorRegressions:
    """All-zero / degenerate weight vectors must fail with ScoringError.

    Regression: the weighted combinators used to let degenerate vectors
    through to ``score``, where they surfaced as ``ZeroDivisionError``
    (``0.0 ** negative_weight``) or silent ``nan`` scores instead of a
    clear configuration error.
    """

    def test_weighted_average_all_zero_vector_rejected(self):
        with pytest.raises(ScoringError, match="all-zero weight vector"):
            WeightedAverage.of({"delta1": 0.0, "delta4": 0.0, "delta5": 0.0})

    def test_weighted_product_all_zero_vector_rejected(self):
        with pytest.raises(ScoringError, match="all-zero weight vector"):
            WeightedProduct.of({"delta1": 0.0, "delta4": 0.0})

    def test_weighted_average_non_finite_weight_rejected(self):
        with pytest.raises(ScoringError, match="finite"):
            WeightedAverage.of({"delta1": float("nan"), "delta4": 1.0})
        with pytest.raises(ScoringError, match="finite"):
            WeightedProduct.of({"delta1": float("inf")})

    def test_weighted_product_zero_to_negative_weight_is_scoring_error(self):
        expression = WeightedProduct.of({"delta1": -1.0, "delta4": 1.0})
        try:
            expression.score({"delta1": 0.0, "delta4": 0.5})
        except ScoringError as error:
            assert "negative weight" in str(error)
        else:  # pragma: no cover - the regression would resurface here
            raise AssertionError("expected ScoringError, not ZeroDivisionError")

    def test_single_nonzero_weight_still_accepted(self):
        expression = WeightedAverage.of({"delta1": 1.0, "delta4": 0.0})
        assert expression.score({"delta1": 0.5, "delta4": 1.0}) == pytest.approx(0.5)
