"""Additional cross-cutting tests: chase-backed explanation, UCQ explanations,
and the δ6 trade-off on the running example."""

import pytest

from repro.core import MatchEvaluator, OntologyExplainer, WeightedAverage
from repro.core.criteria import DELTA_6, EvaluationContext
from repro.obdm.system import OBDMSystem
from repro.ontologies.university import (
    build_university_database,
    build_university_labeling,
    build_university_specification,
    example_queries,
)
from repro.queries.parser import parse_ucq
from repro.queries.ucq import UnionOfConjunctiveQueries


@pytest.fixture(scope="module")
def chase_system():
    """The running example answered with the chase strategy instead of rewriting."""
    specification = build_university_specification().with_strategy("chase")
    return OBDMSystem(specification, build_university_database(), name="chase_Sigma")


class TestChaseBackedMatching:
    """Definition 3.4 must not depend on the certain-answer strategy."""

    @pytest.mark.parametrize("query_name, positives, negatives", [
        ("q1", 3, 0),
        ("q2", 2, 1),
        ("q3", 2, 0),
    ])
    def test_profiles_match_rewriting(self, chase_system, query_name, positives, negatives):
        labeling = build_university_labeling()
        evaluator = MatchEvaluator(chase_system, radius=1)
        profile = evaluator.profile(example_queries()[query_name], labeling)
        assert profile.true_positives == positives
        assert profile.false_positives == negatives

    def test_explainer_over_chase_system(self, chase_system):
        labeling = build_university_labeling()
        explainer = OntologyExplainer(chase_system)
        report = explainer.explain(
            labeling, radius=1, candidates=list(example_queries().values())
        )
        assert str(report.best.query).startswith("q3")


class TestUCQExplanations:
    """The UCQ language with criterion δ6 (few disjuncts)."""

    def test_union_of_q2_and_q3_covers_everything(self, university_evaluator, university_labeling):
        union = parse_ucq(
            "q(x) :- studies(x, 'Math')\nq(x) :- likes(x, 'Science')"
        )
        profile = university_evaluator.profile(union, university_labeling)
        # The union matches every positive, but inherits q2's false positive.
        assert profile.positive_coverage() == 1.0
        assert profile.false_positives == 1

    def test_union_of_q1_and_q3_is_perfect(self, university_evaluator, university_labeling):
        union = parse_ucq(
            "q(x) :- studies(x, y), taughtIn(y, z), locatedIn(z, 'Rome')\n"
            "q(x) :- likes(x, 'Science')"
        )
        profile = university_evaluator.profile(union, university_labeling)
        # UCQs *can* perfectly separate Example 3.6 even though no CQ can.
        assert profile.is_perfect_separation()

    def test_delta6_penalises_larger_unions(self, university_evaluator, university_labeling):
        small = parse_ucq("q(x) :- likes(x, 'Science')")
        large = parse_ucq(
            "q(x) :- likes(x, 'Science')\nq(x) :- studies(x, 'Math')\nq(x) :- studies(x, y)"
        )
        small_context = EvaluationContext(
            small, university_evaluator.profile(small, university_labeling), university_labeling, 1
        )
        large_context = EvaluationContext(
            large, university_evaluator.profile(large, university_labeling), university_labeling, 1
        )
        assert DELTA_6.evaluate(small_context) > DELTA_6.evaluate(large_context)

    def test_best_ucq_search_reaches_perfect_separation(
        self, university_system, university_labeling
    ):
        from repro.core.best_describe import BestDescriptionSearch

        search = BestDescriptionSearch(
            university_system,
            university_labeling,
            criteria=("delta1", "delta4", "delta6"),
            expression=WeightedAverage.of({"delta1": 3.0, "delta4": 3.0, "delta6": 1.0}),
        )
        queries = list(example_queries().values())
        best_union = search.best_ucq(queries, max_disjuncts=2)
        assert isinstance(best_union.query, UnionOfConjunctiveQueries)
        assert best_union.profile.is_perfect_separation()


class TestExplainerScoreConsistency:
    def test_score_matches_report_entry(self, university_explainer, university_labeling, university_queries):
        q3 = university_queries["q3"]
        direct = university_explainer.score(q3, university_labeling, radius=1)
        report = university_explainer.explain(
            university_labeling, radius=1, candidates=[q3]
        )
        assert report.best.score == pytest.approx(direct.score)

    def test_inverted_labeling_swaps_coverage_and_exclusion(
        self, university_explainer, university_labeling, university_queries
    ):
        q2 = university_queries["q2"]
        normal = university_explainer.profile(q2, university_labeling)
        inverted = university_explainer.profile(q2, university_labeling.inverted())
        assert normal.true_positives == inverted.false_positives
        assert normal.false_positives == inverted.true_positives
