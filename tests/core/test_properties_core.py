"""Property-based tests (hypothesis) for the explanation framework.

Invariants exercised on randomly generated university-style databases
and labelings:

* borders are monotone in the radius (B_{t,r} ⊆ B_{t,r+1});
* J-matching is monotone in the radius (Proposition 3.5);
* adding facts to the database never shrinks a border;
* match profiles partition the labeling, and the criteria values always
  lie in [0, 1];
* the weighted-average Z-score is bounded by the smallest and largest
  criterion value.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.border import BorderComputer
from repro.core.criteria import DELTA_1, DELTA_4, DELTA_5, EvaluationContext, evaluate_criteria
from repro.core.labeling import Labeling
from repro.core.matching import MatchEvaluator
from repro.core.scoring import example_3_8_expression
from repro.obdm.database import SourceDatabase
from repro.obdm.system import OBDMSystem
from repro.ontologies.university import build_university_specification, example_queries
from repro.queries.atoms import Atom

STUDENTS = [f"S{i}" for i in range(8)]
SUBJECTS = ["Math", "Science", "Law"]
UNIVERSITIES = ["Sap", "TV", "Pol", "Norm"]
CITIES = ["Rome", "Milan", "Pisa"]

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def university_databases(draw):
    """Random databases over the university schema (non-strict)."""
    database = SourceDatabase(strict=False, name="random_university")
    enrolment_count = draw(st.integers(min_value=1, max_value=12))
    for _ in range(enrolment_count):
        student = draw(st.sampled_from(STUDENTS))
        subject = draw(st.sampled_from(SUBJECTS))
        university = draw(st.sampled_from(UNIVERSITIES))
        database.add("STUD", student)
        database.add("ENR", student, subject, university)
    location_count = draw(st.integers(min_value=0, max_value=4))
    for _ in range(location_count):
        database.add("LOC", draw(st.sampled_from(UNIVERSITIES)), draw(st.sampled_from(CITIES)))
    return database


@st.composite
def labelings(draw, database):
    students = sorted({f.args[0].value for f in database.facts_with_predicate("STUD")})
    if len(students) < 2:
        positives, negatives = students[:1], []
    else:
        split = draw(st.integers(min_value=1, max_value=len(students) - 1))
        positives, negatives = students[:split], students[split:]
    return Labeling(positives, negatives, name="random_lambda")


@SETTINGS
@given(st.data())
def test_borders_monotone_in_radius(data):
    database = data.draw(university_databases())
    computer = BorderComputer(database)
    student = data.draw(st.sampled_from(STUDENTS))
    previous = frozenset()
    for radius in range(4):
        current = computer.border(student, radius).atoms
        assert previous <= current
        previous = current


@SETTINGS
@given(st.data())
def test_borders_monotone_in_database(data):
    database = data.draw(university_databases())
    computer = BorderComputer(database)
    student = data.draw(st.sampled_from(STUDENTS))
    small_border = computer.border(student, 2).atoms

    extended = database.copy()
    extended.add("ENR", student, "History", "Sap")
    extended_computer = BorderComputer(extended)
    large_border = extended_computer.border(student, 2).atoms
    assert small_border <= large_border


@SETTINGS
@given(st.data())
def test_proposition_3_5_on_random_databases(data):
    database = data.draw(university_databases())
    system = OBDMSystem(build_university_specification(), database)
    evaluator = MatchEvaluator(system, radius=0)
    query_name = data.draw(st.sampled_from(["q1", "q2", "q3"]))
    student = data.draw(st.sampled_from(STUDENTS))
    query = example_queries()[query_name]
    assert evaluator.is_monotone_in_radius(query, student, max_radius=3)


@SETTINGS
@given(st.data())
def test_profile_partitions_labeling_and_criteria_bounded(data):
    database = data.draw(university_databases())
    labeling = data.draw(labelings(database))
    system = OBDMSystem(build_university_specification(), database)
    evaluator = MatchEvaluator(system, radius=1)
    query_name = data.draw(st.sampled_from(["q1", "q2", "q3"]))
    query = example_queries()[query_name]

    profile = evaluator.profile(query, labeling)
    assert profile.positives_matched | profile.positives_unmatched == labeling.positives
    assert profile.negatives_matched | profile.negatives_unmatched == labeling.negatives
    assert not (profile.positives_matched & profile.positives_unmatched)

    context = EvaluationContext(query, profile, labeling, 1)
    values = evaluate_criteria((DELTA_1, DELTA_4, DELTA_5), context)
    assert all(0.0 <= value <= 1.0 for value in values.values())

    score = example_3_8_expression().score(values)
    assert min(values.values()) - 1e-9 <= score <= max(values.values()) + 1e-9


@SETTINGS
@given(
    st.floats(min_value=0.1, max_value=10),
    st.floats(min_value=0.1, max_value=10),
    st.floats(min_value=0.1, max_value=10),
)
def test_weighted_average_is_convex_combination(alpha, beta, gamma):
    values = {"delta1": 0.75, "delta4": 1.0, "delta5": 1 / 3}
    score = example_3_8_expression(alpha, beta, gamma).score(values)
    assert min(values.values()) - 1e-9 <= score <= max(values.values()) + 1e-9
