"""Unit tests for explanation reports and their rendering."""

import pytest

from repro.core.best_describe import ScoredQuery
from repro.core.labeling import Labeling, normalize_tuple
from repro.core.matching import MatchProfile
from repro.core.report import Explanation, ExplanationReport, build_report
from repro.queries.parser import parse_cq


def profile(tp=("a",), fn=(), fp=(), tn=("z",)):
    return MatchProfile(
        positives_matched=frozenset(normalize_tuple(v) for v in tp),
        positives_unmatched=frozenset(normalize_tuple(v) for v in fn),
        negatives_matched=frozenset(normalize_tuple(v) for v in fp),
        negatives_unmatched=frozenset(normalize_tuple(v) for v in tn),
    )


def scored(score=0.8, query_text="q(x) :- studies(x, 'Math')", **profile_kwargs):
    return ScoredQuery(
        query=parse_cq(query_text),
        score=score,
        criterion_values=(("delta1", 0.5), ("delta4", 1.0)),
        profile=profile(**profile_kwargs),
    )


class TestExplanation:
    def test_from_scored(self):
        explanation = Explanation.from_scored(1, scored())
        assert explanation.rank == 1
        assert explanation.values == {"delta1": 0.5, "delta4": 1.0}

    def test_is_perfect(self):
        assert Explanation.from_scored(1, scored()).is_perfect()
        imperfect = Explanation.from_scored(1, scored(fp=("bad",)))
        assert not imperfect.is_perfect()

    def test_summary_mentions_counts(self):
        summary = Explanation.from_scored(2, scored()).summary()
        assert "#2" in summary and "1/1" in summary


class TestExplanationReport:
    def build(self, count=3):
        labeling = Labeling(["a"], ["z"], name="demo")
        ranking = [scored(score=1.0 - 0.1 * index) for index in range(count)]
        return build_report(labeling, 1, ["delta1", "delta4"], "WeightedAverage", ranking, count)

    def test_best_and_top(self):
        report = self.build()
        assert report.best.rank == 1
        assert len(report.top(2)) == 2
        assert len(report) == 3

    def test_top_k_limit_in_build(self):
        labeling = Labeling(["a"], ["z"])
        ranking = [scored(score=0.9), scored(score=0.8)]
        report = build_report(labeling, 1, ["delta1"], "Z", ranking, 2, top_k=1)
        assert len(report) == 1

    def test_render_contains_parameters(self):
        text = self.build().render()
        assert "radius r = 1" in text
        assert "delta1" in text
        assert "q(?x)" in text

    def test_render_empty(self):
        labeling = Labeling(["a"], ["z"])
        report = build_report(labeling, 1, ["delta1"], "Z", [], 0)
        assert "(no candidate explanations)" in report.render()
        assert report.best is None

    def test_to_rows(self):
        rows = self.build().to_rows()
        assert len(rows) == 3
        assert rows[0]["rank"] == 1
        assert "delta1" in rows[0]

    def test_perfect_explanations_filter(self):
        report = self.build()
        assert len(report.perfect_explanations()) == 3

    def test_iteration_order(self):
        ranks = [explanation.rank for explanation in self.build()]
        assert ranks == [1, 2, 3]
