"""Unit tests for borders (Definitions 3.1-3.2, Example 3.3)."""

import pytest

from repro.core.border import Border, BorderComputer
from repro.errors import ExplanationError
from repro.queries.atoms import Atom
from repro.queries.terms import Constant


class TestExample33:
    """The paper's Example 3.3, reproduced atom by atom."""

    def test_layer_0(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        assert computer.layers("a", 0)[0] == frozenset(
            {Atom.of("R", "a", "b"), Atom.of("S", "a", "c")}
        )

    def test_layer_1(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        assert computer.layers("a", 1)[1] == frozenset({Atom.of("Z", "c", "d")})

    def test_layer_2(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        assert computer.layers("a", 2)[2] == frozenset({Atom.of("W", "d", "e")})

    def test_border_of_radius_2(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        border = computer.border("a", 2)
        assert border.atoms == frozenset(
            {
                Atom.of("R", "a", "b"),
                Atom.of("S", "a", "c"),
                Atom.of("Z", "c", "d"),
                Atom.of("W", "d", "e"),
            }
        )

    def test_unconnected_atom_never_included(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        border = computer.border("a", 10)
        assert Atom.of("R", "f", "g") not in border

    def test_far_atom_needs_radius_3(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        assert Atom.of("W", "e", "h") not in computer.border("a", 2)
        assert Atom.of("W", "e", "h") in computer.border("a", 3)


class TestBorderProperties:
    def test_borders_grow_with_radius(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        previous = frozenset()
        for radius in range(5):
            current = computer.border("a", radius).atoms
            assert previous <= current
            previous = current

    def test_border_layers_are_disjoint(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        layers = computer.layers("a", 4)
        seen = set()
        for layer in layers:
            assert not (layer & seen)
            seen |= layer

    def test_unknown_constant_has_empty_border(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        assert computer.border("zzz", 3).size() == 0

    def test_negative_radius_rejected(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        with pytest.raises(ExplanationError):
            computer.border("a", -1)

    def test_cache_returns_same_object(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        assert computer.border("a", 2) is computer.border("a", 2)

    def test_saturation_radius(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        saturation = computer.saturation_radius("a")
        assert saturation == 3  # W(e,h) arrives at radius 3, then nothing changes

    def test_statistics(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        stats = computer.statistics(["a", "f"], 1)
        assert stats["count"] == 2
        assert stats["max"] >= stats["min"]

    def test_multi_constant_tuple_border(self, example_3_3_database):
        computer = BorderComputer(example_3_3_database)
        border = computer.border(("a", "f"), 0)
        assert Atom.of("R", "f", "g") in border
        assert Atom.of("R", "a", "b") in border


class TestUniversityBorders:
    """The borders of radius 1 listed in Example 3.6."""

    @pytest.mark.parametrize(
        "student, expected",
        [
            (
                "A10",
                {
                    Atom.of("STUD", "A10"),
                    Atom.of("ENR", "A10", "Math", "TV"),
                    Atom.of("LOC", "TV", "Rome"),
                },
            ),
            (
                "C12",
                {
                    Atom.of("STUD", "C12"),
                    Atom.of("ENR", "C12", "Science", "Norm"),
                },
            ),
            (
                "E25",
                {
                    Atom.of("STUD", "E25"),
                    Atom.of("ENR", "E25", "Math", "Pol"),
                    Atom.of("LOC", "Pol", "Milan"),
                },
            ),
        ],
    )
    def test_paper_borders_radius_1(self, university_system, student, expected):
        computer = BorderComputer(university_system.database)
        border = computer.border(student, 1)
        # The paper lists exactly these atoms, except that radius 1 also pulls
        # in the other enrolments sharing the same subject/university constants.
        assert expected <= border.atoms
        own_atoms = {a for a in border.atoms if Constant(student) in a.constants()}
        assert own_atoms == {a for a in expected if Constant(student) in a.constants()}

    def test_border_object_interface(self, university_system):
        computer = BorderComputer(university_system.database)
        border = computer.border("A10", 1)
        assert isinstance(border, Border)
        assert border.radius == 1
        assert len(border) == border.size()
        assert Constant("Rome") in border.constants()
        assert border.layer(5) == frozenset()
        with pytest.raises(ExplanationError):
            border.layer(-1)


class TestBordersDeduplication:
    """``BorderComputer.borders`` must expand each distinct tuple once."""

    def test_duplicate_raws_expand_layers_once(self, university_system, monkeypatch):
        computer = BorderComputer(university_system.database)
        calls = []
        original = BorderComputer.layers

        def counting_layers(self, raw, radius):
            calls.append(raw)
            return original(self, raw, radius)

        monkeypatch.setattr(BorderComputer, "layers", counting_layers)
        # The same tuple under several raw forms (plain value, 1-tuple,
        # Constant) — the shape drift produces when a tuple moves between
        # labels — must trigger exactly one layer expansion.
        result = computer.borders(["A10", ("A10",), Constant("A10"), "B80"], 1)
        assert len(result) == 2
        assert len(calls) == 2

    def test_second_call_hits_the_border_cache(self, university_system, monkeypatch):
        computer = BorderComputer(university_system.database)
        computer.borders(["A10", "B80"], 1)
        def exploding_layers(self, raw, radius):
            raise AssertionError(f"border cache missed for {raw!r}")

        monkeypatch.setattr(BorderComputer, "layers", exploding_layers)
        again = computer.borders(["A10", "B80", "A10"], 1)
        assert set(again) == {(Constant("A10"),), (Constant("B80"),)}
