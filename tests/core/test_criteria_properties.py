"""Property-based tests for the criteria layer (δ1–δ6).

Random labelings/profiles (seeded ``random.Random``, no external
dependency) exercise the algebraic laws the paper's criteria must obey,
on *both* profile representations — the set-backed
:class:`~repro.core.matching.MatchProfile` and the popcount-backed
:class:`~repro.engine.verdicts.BitsetVerdictProfile`:

* δ1/δ2 and δ3/δ4 coincide numerically under the chosen normalisation;
* δ1 is monotone under adding matched positives (strictly increasing
  while some positive is still unmatched);
* δ5/δ6 strictly decrease under atom/disjunct growth;
* ``Criterion.evaluate`` rejects any value outside ``[0, 1]``;
* the two representations agree on every count and every criterion.
"""

from __future__ import annotations

import random

import pytest

from repro.core.criteria import (
    ACCURACY,
    DELTA_1,
    DELTA_2,
    DELTA_3,
    DELTA_4,
    DELTA_5,
    DELTA_6,
    F1,
    PRECISION,
    Criterion,
    EvaluationContext,
)
from repro.core.labeling import Labeling, normalize_tuple
from repro.core.matching import MatchProfile
from repro.engine.verdicts import BitsetVerdictProfile, BorderColumns
from repro.errors import CriterionError
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.ucq import UnionOfConjunctiveQueries

TRIALS = 60

_DUMMY_QUERY = ConjunctiveQuery.of(("?x",), (Atom.of("C", "?x"),), name="q_prop")


def _random_case(rng: random.Random):
    """A random labeling with random verdicts, in both representations."""
    positives = [f"p{i}" for i in range(rng.randint(0, 10))]
    negatives = [f"n{i}" for i in range(rng.randint(0, 10))]
    matched = {
        normalize_tuple(value)
        for value in positives + negatives
        if rng.random() < rng.choice((0.2, 0.5, 0.8))
    }
    pos_keys = {normalize_tuple(value) for value in positives}
    neg_keys = {normalize_tuple(value) for value in negatives}
    profile = MatchProfile(
        positives_matched=frozenset(pos_keys & matched),
        positives_unmatched=frozenset(pos_keys - matched),
        negatives_matched=frozenset(neg_keys & matched),
        negatives_unmatched=frozenset(neg_keys - matched),
    )
    columns = BorderColumns.from_tuples(positives, negatives)
    row = 0
    for bit, value in enumerate(columns.tuples):
        if value in matched:
            row |= 1 << bit
    bitset = BitsetVerdictProfile(row, columns)
    labeling = Labeling(positives, negatives, name="prop")
    return profile, bitset, labeling


def _context(profile, labeling, query=_DUMMY_QUERY) -> EvaluationContext:
    return EvaluationContext(query=query, profile=profile, labeling=labeling, radius=1)


ALL_MATCH_CRITERIA = (DELTA_1, DELTA_2, DELTA_3, DELTA_4, PRECISION, F1, ACCURACY)


class TestRepresentationAgreement:
    def test_bitset_and_set_profiles_agree_everywhere(self):
        rng = random.Random(20260730)
        for _ in range(TRIALS):
            profile, bitset, labeling = _random_case(rng)
            for name in (
                "true_positives",
                "false_negatives",
                "false_positives",
                "true_negatives",
                "positive_total",
                "negative_total",
            ):
                assert getattr(bitset, name) == getattr(profile, name), name
            assert bitset == profile
            for criterion in ALL_MATCH_CRITERIA:
                assert criterion.evaluate(_context(bitset, labeling)) == pytest.approx(
                    criterion.evaluate(_context(profile, labeling))
                ), criterion.key


class TestNumericCoincidence:
    def test_delta1_equals_delta2_and_delta3_equals_delta4(self):
        rng = random.Random(7)
        for _ in range(TRIALS):
            profile, bitset, labeling = _random_case(rng)
            for candidate in (profile, bitset):
                context = _context(candidate, labeling)
                assert DELTA_1.evaluate(context) == pytest.approx(DELTA_2.evaluate(context))
                assert DELTA_3.evaluate(context) == pytest.approx(DELTA_4.evaluate(context))


class TestDelta1Monotonicity:
    def test_adding_a_matched_positive_never_decreases_delta1(self):
        rng = random.Random(99)
        for trial in range(TRIALS):
            profile, _, labeling = _random_case(rng)
            extra = normalize_tuple(f"extra{trial}")
            grown_profile = MatchProfile(
                positives_matched=profile.positives_matched | {extra},
                positives_unmatched=profile.positives_unmatched,
                negatives_matched=profile.negatives_matched,
                negatives_unmatched=profile.negatives_unmatched,
            )
            grown_labeling = Labeling(
                [t for t, label in labeling if label == 1] + [extra],
                [t for t, label in labeling if label == -1],
                name="prop_grown",
            )
            before = DELTA_1.evaluate(_context(profile, labeling))
            after = DELTA_1.evaluate(_context(grown_profile, grown_labeling))
            assert after >= before
            if profile.false_negatives > 0:
                assert after > before, "δ1 must strictly increase while positives are missed"

    def test_matching_a_previously_unmatched_positive_increases_delta1(self):
        rng = random.Random(43)
        for _ in range(TRIALS):
            profile, _, labeling = _random_case(rng)
            if not profile.positives_unmatched:
                continue
            moved = next(iter(sorted(profile.positives_unmatched, key=repr)))
            improved = MatchProfile(
                positives_matched=profile.positives_matched | {moved},
                positives_unmatched=profile.positives_unmatched - {moved},
                negatives_matched=profile.negatives_matched,
                negatives_unmatched=profile.negatives_unmatched,
            )
            assert DELTA_1.evaluate(_context(improved, labeling)) > DELTA_1.evaluate(
                _context(profile, labeling)
            )


class TestSizeCriteriaStrictDecrease:
    @staticmethod
    def _cq_with_atoms(count: int) -> ConjunctiveQuery:
        atoms = tuple(Atom.of(f"P{i}", "?x") for i in range(count))
        return ConjunctiveQuery.of(("?x",), atoms, name=f"q_{count}")

    def test_delta5_strictly_decreases_with_atom_count(self):
        rng = random.Random(5)
        profile, _, labeling = _random_case(rng)
        for _ in range(TRIALS):
            smaller = rng.randint(1, 8)
            larger = smaller + rng.randint(1, 5)
            small_value = DELTA_5.evaluate(
                _context(profile, labeling, self._cq_with_atoms(smaller))
            )
            large_value = DELTA_5.evaluate(
                _context(profile, labeling, self._cq_with_atoms(larger))
            )
            assert large_value < small_value

    def test_delta6_strictly_decreases_with_disjunct_count(self):
        rng = random.Random(6)
        profile, _, labeling = _random_case(rng)
        for _ in range(TRIALS):
            smaller = rng.randint(1, 5)
            larger = smaller + rng.randint(1, 4)

            def union(count: int) -> UnionOfConjunctiveQueries:
                return UnionOfConjunctiveQueries.of(
                    self._cq_with_atoms(i + 1) for i in range(count)
                )

            assert DELTA_6.evaluate(
                _context(profile, labeling, union(larger))
            ) < DELTA_6.evaluate(_context(profile, labeling, union(smaller)))


class TestRangeEnforcement:
    def test_out_of_range_values_are_rejected(self):
        rng = random.Random(1234)
        profile, bitset, labeling = _random_case(rng)
        for _ in range(TRIALS):
            value = rng.choice(
                (
                    rng.uniform(1.0000001, 50.0),
                    rng.uniform(-50.0, -0.0000001),
                    float("nan"),
                    float("inf"),
                    -float("inf"),
                )
            )
            bad = Criterion("bad", "returns out-of-range values", lambda _ctx, v=value: v)
            with pytest.raises(CriterionError):
                bad.evaluate(_context(profile, labeling))
            with pytest.raises(CriterionError):
                bad.evaluate(_context(bitset, labeling))

    def test_boundary_values_are_accepted(self):
        rng = random.Random(4321)
        profile, _, labeling = _random_case(rng)
        for value in (0.0, 1.0, 0.5):
            ok = Criterion("ok", "in range", lambda _ctx, v=value: v)
            assert ok.evaluate(_context(profile, labeling)) == value
