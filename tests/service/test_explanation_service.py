"""Tests for the long-lived explanation service (repro.service).

The contract: a resident service must answer every request exactly as a
fresh :class:`OntologyExplainer` over a fresh system would — warmth,
drift absorption, session eviction, cache eviction and snapshot
restarts may only change speed, never reports.
"""

from __future__ import annotations

import pytest

from repro.core.explainer import OntologyExplainer
from repro.core.labeling import Labeling
from repro.engine import CacheLimits
from repro.obdm.system import OBDMSystem
from repro.ontologies.university import (
    build_university_labeling,
    build_university_system,
    example_queries,
)
from repro.service import ExplanationService

pytestmark = pytest.mark.service


@pytest.fixture()
def service():
    return ExplanationService(build_university_system())


@pytest.fixture()
def labeling():
    return build_university_labeling()


def _reference_report(labeling, **kwargs):
    """What a stateless deployment would answer (fresh system per call)."""
    return OntologyExplainer(build_university_system()).explain(labeling, **kwargs)


def _drifted(labeling, name=None):
    """Flip one positive to negative (same name: the drift trigger)."""
    moved = sorted(labeling.positives, key=repr)[0]
    return Labeling(
        positives=[t for t in labeling.positives if t != moved],
        negatives=list(labeling.negatives) + [moved],
        name=name if name is not None else labeling.name,
    )


class TestRequestPath:
    def test_cold_request_matches_stateless_explainer(self, service, labeling):
        assert service.explain(labeling).render() == _reference_report(labeling).render()
        assert service.stats.cold_builds == 1

    def test_second_request_is_a_warm_hit_and_identical(self, service, labeling):
        first = service.explain(labeling)
        second = service.explain(labeling)
        assert first.render() == second.render()
        assert service.stats.warm_hits == 1
        # The warm request must not recompute verdict rows.
        assert service.cache_stats.verdict_row_hits > 0

    def test_renamed_identical_content_is_still_warm(self, service, labeling):
        service.explain(labeling)
        renamed = Labeling(labeling.positives, labeling.negatives, name="other_name")
        report = service.explain(renamed)
        assert service.stats.warm_hits == 1
        assert report.best is not None

    def test_explicit_candidates_are_supported(self, service, labeling):
        queries = list(example_queries().values())
        report = service.explain(labeling, candidates=queries, top_k=None)
        reference = _reference_report(labeling, candidates=queries, top_k=None)
        assert report.render(top_k=None) == reference.render(top_k=None)

    def test_criteria_override_reuses_the_warm_matrix(self, service, labeling):
        from repro.core.scoring import balanced_expression

        service.explain(labeling)
        rows_before = service.cache_stats.verdict_row_misses
        report = service.explain(
            labeling, criteria=("delta1", "delta4"), expression=balanced_expression()
        )
        assert service.cache_stats.verdict_row_misses == rows_before
        reference = _reference_report(
            labeling, criteria=("delta1", "delta4"), expression=balanced_expression()
        )
        assert report.render() == reference.render()


class TestDrift:
    def test_drift_is_applied_incrementally_and_identically(self, service, labeling):
        service.explain(labeling)
        drifted = _drifted(labeling)
        assert service.drift_of(drifted) is not None
        report = service.explain(drifted)
        assert service.stats.drift_updates == 1
        assert report.render() == _reference_report(drifted).render()

    def test_drift_preview_is_none_for_warm_or_unknown(self, service, labeling):
        assert service.drift_of(labeling) is None  # unknown: would build cold
        service.explain(labeling)
        assert service.drift_of(labeling) is None  # warm: exact signature hit

    def test_drift_preview_agrees_with_explain_after_layout_eviction(self, labeling):
        # An exact-hit session whose layout was evicted takes the same
        # path explain() takes: a live same-name predecessor still
        # drifts, and the preview must say so.
        service = ExplanationService(
            build_university_system(),
            cache_limits=CacheLimits(verdict_layouts=1),
        )
        drifted = _drifted(labeling)
        service.explain(labeling)
        service.explain(drifted)   # evicts labeling's layout, name → drifted
        service.explain(labeling)  # rebuilds labeling, evicts drifted's layout
        preview = service.drift_of(drifted)
        assert preview is not None and not preview.is_empty()
        before = service.stats.drift_updates
        service.explain(drifted)
        assert service.stats.drift_updates == before + 1

    def test_differently_named_labeling_builds_cold(self, service, labeling):
        service.explain(labeling)
        unrelated = _drifted(labeling, name="unrelated")
        report = service.explain(unrelated)
        assert service.stats.drift_updates == 0
        assert service.stats.cold_builds == 2
        assert report.render() == _reference_report(unrelated).render()

    def test_disjoint_same_name_labelings_build_cold(self, service, labeling):
        # Two unrelated labelings that happen to share a name (e.g. the
        # constructor default "lambda") have no surviving columns, so
        # "drift" would just be a cold build plus wasted J-matches over
        # the predecessor's pool — and lying counters.
        service.explain(labeling)
        used = {c for t in labeling.tuples() for c in t}
        others = sorted(
            (c for c in service.system.domain() if c not in used), key=repr
        )[:3]
        disjoint = Labeling(others[:2], others[2:3], name=labeling.name)
        report = service.explain(disjoint)
        assert service.stats.drift_updates == 0
        assert service.stats.cold_builds == 2
        assert report.render() == _reference_report(disjoint).render()

    def test_drift_preview_does_not_promote_sessions(self, labeling):
        # drift_of is observability: a monitoring loop polling it must not
        # change which warm sessions survive eviction.
        service = ExplanationService(build_university_system(), max_sessions=2)
        service.explain(labeling)  # session A (LRU after B arrives)
        second = Labeling(["A10", "B80"], ["E25"], name="second")
        service.explain(second)  # session B
        for _ in range(5):
            service.drift_of(_drifted(labeling))  # would promote A if it touched
        third = Labeling(["C12"], ["E25"], name="third")
        service.explain(third)  # evicts the true LRU session: A
        assert service._sessions.get((labeling.signature(), 1), touch=False) is None
        assert service._sessions.get((second.signature(), 1), touch=False) is not None

    def test_chained_drift_stays_identical(self, service, labeling):
        service.explain(labeling)
        current = labeling
        for _ in range(3):
            current = _drifted(current)
            report = service.explain(current)
            assert report.render() == _reference_report(current).render()
        assert service.stats.drift_updates == 3


class TestLifecycle:
    def test_session_ring_is_bounded(self, labeling):
        service = ExplanationService(build_university_system(), max_sessions=1)
        service.explain(labeling)
        other = Labeling(labeling.positives, labeling.negatives, name="other")
        inverted = other.inverted()
        service.explain(inverted)  # different signature: evicts the first session
        assert service.size_report()["sessions"] == 1
        # The first labeling is served again — correctly, just not warm.
        report = service.explain(labeling)
        assert report.render() == _reference_report(labeling).render()

    def test_layout_eviction_forces_rebuild_not_stale_reuse(self, labeling):
        service = ExplanationService(
            build_university_system(),
            cache_limits=CacheLimits(verdict_layouts=1),
        )
        inverted = labeling.inverted()
        first = service.explain(labeling).render()
        service.explain(inverted)  # evicts the first labeling's layout
        again = service.explain(labeling)  # session exists but is not live
        assert service.stats.warm_hits == 0
        assert service.cache_stats.evictions > 0
        assert again.render() == first
        assert again.render() == _reference_report(labeling).render()

    def test_cache_limits_bound_the_whole_resident_footprint(self):
        # CacheLimits must bound *all* long-lived per-tuple state, not
        # just the shared layers: the service's border computer and its
        # evaluators' ABox lookups must not pin every tuple ever served.
        service = ExplanationService(
            build_university_system(),
            cache_limits=CacheLimits(border_aboxes=2, verdict_layouts=2),
            max_sessions=2,
        )
        students = ["A10", "B80", "C12", "D50", "E25"]
        for index, student in enumerate(students):
            others = [s for s in students if s != student]
            service.explain(Labeling([student], others[:2], name=f"probe_{index}"))
        assert service.size_report()["border_aboxes"] <= 2
        assert len(service._border_computer._cache) <= 2
        assert service.evaluator()._abox_cache == {}
        # Border evictions are visible in the shared counter like every
        # other bounded layer's.
        assert service.cache_stats.evictions > 0

    def test_warm_traffic_protects_the_hot_layout_from_eviction(self, labeling):
        # Warm reuse must refresh LRU recency: under pressure the layout
        # evicted first should be the idle one, not the one serving every
        # other request.
        service = ExplanationService(
            build_university_system(),
            cache_limits=CacheLimits(verdict_layouts=2),
        )
        service.explain(labeling)  # hot layout A
        idle = Labeling(["A10", "B80"], ["E25"], name="idle")
        service.explain(idle)  # idle layout B
        service.explain(labeling)  # warm hit: refreshes A's recency
        newcomer = Labeling(["C12"], ["E25"], name="newcomer")
        service.explain(newcomer)  # layout C evicts the LRU layout (B)
        warm_hits = service.stats.warm_hits
        service.explain(labeling)
        assert service.stats.warm_hits == warm_hits + 1, (
            "the hot layout was evicted despite warm traffic"
        )

    def test_legacy_per_pair_path_is_served_too(self, labeling):
        system = build_university_system()
        system.specification.engine.verdicts.enabled = False
        service = ExplanationService(system)
        report = service.explain(labeling)
        repeat = service.explain(labeling)
        assert report.render() == repeat.render() == _reference_report(labeling).render()

    def test_concurrent_requests_are_safe_and_identical(self, labeling):
        from concurrent.futures import ThreadPoolExecutor

        service = ExplanationService(build_university_system())
        drifted = _drifted(labeling)
        queries = list(example_queries().values())
        reference = {
            id(lam): _reference_report(lam, candidates=queries, top_k=None).render(top_k=None)
            for lam in (labeling, drifted)
        }
        requests = [labeling, drifted] * 6

        def serve(lam):
            return id(lam), service.explain(lam, candidates=queries, top_k=None).render(top_k=None)

        with ThreadPoolExecutor(max_workers=4) as pool:
            for key, rendered in pool.map(serve, requests):
                assert rendered == reference[key]
        assert service.stats.requests == len(requests)

    def test_invalid_max_sessions_rejected(self):
        from repro.errors import ExplanationError

        with pytest.raises(ExplanationError):
            ExplanationService(build_university_system(), max_sessions=0)


class TestPersistence:
    def test_save_load_round_trip_yields_identical_rankings(self, service, labeling, tmp_path):
        first = service.explain(labeling)
        path = tmp_path / "service.cache"
        saved = service.save(path)
        assert saved["verdict_rows"] > 0

        restarted = ExplanationService(build_university_system())
        added = restarted.load(path)
        assert added["verdict_rows"] > 0
        report = restarted.explain(labeling)
        assert report.render() == first.render()
        # The restarted service starts warm: rows come from the snapshot.
        assert restarted.cache_stats.verdict_row_hits > 0
        assert restarted.cache_stats.verdict_row_misses == 0

    def test_snapshot_respects_limits_on_load(self, service, labeling, tmp_path):
        service.explain(labeling)
        service.explain(labeling.inverted())
        path = tmp_path / "service.cache"
        service.save(path)
        bounded = ExplanationService(
            build_university_system(),
            cache_limits=CacheLimits(verdict_layouts=1),
        )
        bounded.load(path)
        assert bounded.size_report()["verdict_layouts"] == 1
        report = bounded.explain(labeling)
        assert report.render() == _reference_report(labeling).render()


class TestMatrixInjectionValidation:
    def test_mismatched_matrix_is_rejected(self, labeling):
        from repro.core.best_describe import BestDescriptionSearch
        from repro.core.matching import MatchEvaluator
        from repro.engine.verdicts import BorderColumns, VerdictMatrix
        from repro.errors import ExplanationError

        system = build_university_system()
        evaluator = MatchEvaluator(system, radius=1)
        matrix = VerdictMatrix(
            evaluator, BorderColumns.from_labeling(evaluator, labeling)
        )
        other = labeling.inverted()
        with pytest.raises(ExplanationError):
            BestDescriptionSearch(system, other, 1, evaluator=evaluator, matrix=matrix)
        with pytest.raises(ExplanationError):
            BestDescriptionSearch(system, labeling, 2, matrix=matrix)
        # Same labeling and radius, but a different system: the verdict
        # bits would reflect the wrong database.
        with pytest.raises(ExplanationError):
            BestDescriptionSearch(build_university_system(), labeling, 1, matrix=matrix)
        # An evaluator from another system is just as silently wrong.
        with pytest.raises(ExplanationError):
            BestDescriptionSearch(
                build_university_system(), labeling, 1, evaluator=evaluator
            )


class TestWarmStart:
    def test_warm_start_prebuilds_the_fleet(self, service, labeling):
        shifted = _drifted(labeling, name="probe-b")
        counts = service.warm_start([labeling, shifted])
        assert counts["labelings"] == 2
        assert counts["cold"] == 2
        assert counts["rows"] > 0
        stats_before = service.cache_stats.as_dict()
        report = service.explain(labeling)
        drifted_report = service.explain(shifted)
        delta = service.cache_stats.delta_since(stats_before)
        assert delta.get("verdict_row_misses", 0) == 0, (
            "warm-started sessions should serve explain() without building rows"
        )
        assert service.stats.as_dict()["warm_hits"] == 2
        assert report.render() == _reference_report(labeling).render()
        assert drifted_report.render() == _reference_report(shifted).render()

    def test_second_warm_start_is_idempotent(self, service, labeling):
        first = service.warm_start([labeling])
        second = service.warm_start([labeling])
        assert first["cold"] == 1 and second["warm"] == 1
        assert second["rows"] == 0

    def test_shared_candidates_warm_the_matrix(self, service, labeling):
        counts = service.warm_start(
            [labeling],
            candidates=["q1(x) :- likes(x, y)", "q2(x) :- studies(x, 'Math')"],
        )
        assert counts["rows"] == 2

    def test_warm_start_without_matrices_is_a_noop(self, labeling):
        system = build_university_system()
        system.specification.engine.verdicts.enabled = False
        service = ExplanationService(system)
        counts = service.warm_start([labeling])
        assert counts["cold"] == 1
        assert counts["rows"] == 0 and counts["batched"] == 0
        assert service.explain(labeling).render() == _reference_report(labeling).render()


class TestExplainerIntegration:
    def test_explainer_service_shares_the_system(self, labeling):
        explainer = OntologyExplainer(build_university_system())
        service = explainer.service(max_sessions=4)
        assert service.system is explainer.system
        assert service.explain(labeling).render() == explainer.explain(labeling).render()


class TestBooleanLabelingsThroughTheStack:
    def test_boolean_and_int_features_coexist(self):
        # Regression companion to the Constant bool/int fix: the service
        # layer must accept labelings mixing True with 1 end to end.
        labeling = Labeling(positives=[True, "A10"], negatives=[1, 0], name="bools")
        assert labeling.label_of(True) == 1
        assert labeling.label_of(1) == -1


class TestDriftPreviewEdgeCases:
    def test_unknown_labeling_name_previews_none(self, service, labeling):
        service.explain(labeling)
        stranger = Labeling(
            labeling.positives, list(labeling.negatives) + [("E25",)], name="never_served"
        )
        assert service.drift_of(stranger) is None

    def test_radius_mismatch_previews_none(self, service, labeling):
        service.explain(labeling)  # served at the default radius
        drifted = _drifted(labeling)
        assert service.drift_of(drifted) is not None
        # The same name under another radius has no warm predecessor.
        assert service.drift_of(drifted, radius=0) is None

    def test_evicted_predecessor_previews_none(self, labeling):
        service = ExplanationService(build_university_system(), max_sessions=2)
        service.explain(labeling)
        drifted = _drifted(labeling)
        assert service.drift_of(drifted) is not None
        # Fill the session ring until the predecessor is evicted.
        constants = sorted(
            str(c.value) for t in labeling.tuples() for c in t
        )
        for index in range(2):
            filler = Labeling(
                positives=constants[index : index + 1],
                negatives=constants[index + 1 : index + 2],
                name=f"filler_{index}",
            )
            service.explain(filler)
        assert service.drift_of(drifted) is None


class TestDatabaseDrift:
    def _delta(self, database):
        from repro.obdm.database import DatabaseDelta
        from repro.queries.atoms import Atom
        from repro.queries.terms import Constant

        removed = sorted(database.facts, key=str)[0]
        added = Atom(
            removed.predicate, tuple(Constant(f"GHOST{i}") for i in range(len(removed.args)))
        )
        return DatabaseDelta.of([added], [removed])

    def _reference_system(self, database):
        base = build_university_system()
        return OBDMSystem(base.specification, database, name="university_drift_ref")

    def test_apply_delta_serves_post_delta_rankings(self, service, labeling):
        service.explain(labeling)
        delta = self._delta(service.system.database)
        accounting = service.apply_delta(delta)
        assert accounting["sessions_updated"] == 1
        assert service.stats.database_deltas == 1
        assert service.stats.delta_cold_resets == 0
        report = service.explain(labeling)
        reference = OntologyExplainer(
            self._reference_system(service.system.database.copy())
        ).explain(labeling)
        assert report.render() == reference.render()

    def test_snapshot_is_refused_after_database_drift(self, service, labeling, tmp_path):
        service.explain(labeling)
        path = tmp_path / "service.cache"
        service.save(path)
        # A drifted twin refuses the pre-delta snapshot...
        twin = ExplanationService(build_university_system())
        twin.apply_delta(self._delta(twin.system.database))
        with pytest.raises(ValueError):
            twin.load(path)
        # ...and so does the saving service itself once it drifts.
        service.apply_delta(self._delta(service.system.database))
        with pytest.raises(ValueError):
            service.load(path)

    def test_snapshot_round_trip_after_matching_drift(self, service, labeling, tmp_path):
        service.explain(labeling)
        delta = self._delta(service.system.database)
        service.apply_delta(delta)
        service.explain(labeling)
        path = tmp_path / "service.cache"
        service.save(path)
        restarted = ExplanationService(build_university_system())
        restarted.apply_delta(delta)  # same post-delta content: accepted
        restarted.load(path)
        assert restarted.explain(labeling).render() == service.explain(labeling).render()
