"""Tests for the experiment harness: the paper's numbers must reproduce."""

import pytest

from repro.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_batch_scoring,
    run_bias_ablation,
    run_border_scalability,
    run_certain_answers,
    run_example_3_3,
    run_example_3_6,
    run_example_3_8,
    run_fidelity,
    run_proposition_3_5,
    run_search_scalability,
    run_weight_ablation,
)
from repro.experiments.harness import run_all


class TestExperimentResult:
    def test_render_and_columns(self):
        result = ExperimentResult("X", "demo")
        result.add_row(a=1, b=0.5)
        result.add_row(a=2, c="text")
        assert result.columns() == ["a", "b", "c"]
        rendered = result.render()
        assert "[X] demo" in rendered and "0.500" in rendered

    def test_empty_render(self):
        assert "(no rows)" in ExperimentResult("X", "demo").render()

    def test_column_accessor(self):
        result = ExperimentResult("X", "demo")
        result.add_row(a=1)
        result.add_row(b=2)
        assert result.column("a") == [1, None]


class TestPaperExampleExperiments:
    def test_e1_all_layers_match_paper(self):
        result = run_example_3_3()
        assert all(result.column("matches_paper"))
        assert result.rows[-1]["border_size"] == 4

    def test_e2_all_match_sets_match_paper(self):
        result = run_example_3_6()
        assert all(result.column("matches_paper"))

    def test_e3_five_of_six_scores_match(self):
        result = run_example_3_8()
        agreements = result.column("agrees")
        assert agreements.count(True) == 5
        # The single disagreement is the known paper slip on Z1(q2).
        disagreeing = [row for row in result.rows if not row["agrees"]]
        assert len(disagreeing) == 1
        assert disagreeing[0]["query"] == "q2"
        assert disagreeing[0]["measured_z"] == pytest.approx(0.5)

    def test_e4_no_monotonicity_violations(self):
        result = run_proposition_3_5(students=15)
        assert sum(result.column("violations")) == 0

    def test_e5_strategies_agree(self):
        result = run_certain_answers(sizes=(30,))
        assert all(result.column("strategies_agree"))
        # q3 is the query that benefits from the ontology axiom.
        q3_rows = [row for row in result.rows if row["query"] == "q3"]
        assert all(row["ontology_gain"] > 0 for row in q3_rows)

    def test_e8a_paper_winners(self):
        result = run_weight_ablation(weight_grid=((1, 1, 1), (3, 1, 1)))
        winners = {(row["alpha"], row["beta"], row["gamma"]): row["winner"] for row in result.rows}
        assert winners[(1, 1, 1)] == "q3"
        assert winners[(3, 1, 1)] == "q1"


class TestExtendedExperiments:
    def test_e6_fidelity_small(self):
        result = run_fidelity(size=20, classifiers=("decision_tree",), max_candidates=80)
        assert len(result.rows) == 3  # one per domain
        for row in result.rows:
            assert 0.0 <= row["delta1_coverage"] <= 1.0
            assert 0.0 <= row["delta4_exclusion"] <= 1.0
            assert row["z_score"] > 0.0

    def test_e7a_border_scalability_shapes(self):
        result = run_border_scalability(sizes=(30, 60), radii=(0, 1))
        assert len(result.rows) == 4
        by_size = {}
        for row in result.rows:
            by_size.setdefault(row["students"], []).append(row)
        for rows in by_size.values():
            sizes = [row["mean_border_size"] for row in sorted(rows, key=lambda r: r["radius"])]
            assert sizes == sorted(sizes)  # borders grow with the radius

    def test_e7b_search_scalability(self):
        result = run_search_scalability(sizes=(15,))
        assert len(result.rows) == 1
        assert result.rows[0]["best_coverage"] >= 0.9  # the Rome rule is recoverable

    def test_e8b_bias_is_surfaced(self):
        result = run_bias_ablation(persons=25, bias_levels=(0.0, 1.0), max_candidates=120)
        by_bias = {row["bias_strength"]: row for row in result.rows}
        assert by_bias[1.0]["mentions_group"] or by_bias[1.0]["best_query"] != by_bias[0.0]["best_query"]


class TestBatchScoringExperiment:
    def test_e9_batch_matches_per_call_and_is_faster(self):
        result = run_batch_scoring(
            applicants=10, candidate_pool=8, labeled_per_side=2, labelings=2
        )
        row = result.rows[0]
        assert row["identical_rankings"] is True
        assert row["labelings"] == 2
        assert row["saturations_saved"] > 0
        # No wall-clock assertion here: the perf gate lives in
        # benchmarks/bench_batch_explain.py where the workload is big
        # enough for timing to be meaningful.
        assert row["per_call_seconds"] >= 0 and row["batch_seconds"] >= 0


class TestBitsetCriteriaExperiment:
    def test_e10_bitset_matches_legacy_and_sharding_is_identical(self):
        from repro.experiments.scalability import run_bitset_criteria

        result = run_bitset_criteria(
            applicants=12, candidate_pool=8, labeled_per_side=3, labelings=2, rounds=1
        )
        criteria_row, sharding_row = result.rows
        assert criteria_row["mode"] == "criteria_phase"
        assert criteria_row["identical_rankings"] is True
        assert criteria_row["verdict_rows_reused"] > 0
        assert sharding_row["mode"] == "process_sharding"
        assert sharding_row["identical_rankings"] is True
        # No wall-clock assertion here: the perf gate lives in
        # benchmarks/bench_bitset_criteria.py where the workload is big
        # enough for timing to be meaningful.
        assert criteria_row["legacy_seconds"] >= 0 and criteria_row["bitset_seconds"] >= 0


class TestBatchLabelingsExperiment:
    def test_e13_batch_labelings_small(self):
        from repro.experiments.batch_kernel_exp import run_batch_labelings

        result = run_batch_labelings(
            applicants=12, candidate_pool=8, labeled_per_side=3, labelings=2, rounds=1
        )
        dispatch_row, identity_row, pruning_row = result.rows
        assert dispatch_row["mode"] == "batch_dispatch"
        assert dispatch_row["identical"] is True
        assert identity_row["identical"] is True
        assert identity_row["cells"] == 16
        assert pruning_row["identical"] is True
        assert pruning_row["pruned"] > 0
        # No wall-clock assertion here: the perf gate lives in
        # benchmarks/bench_batch_labelings.py where the workload is big
        # enough for timing to be meaningful.
        assert dispatch_row["legacy_seconds"] >= 0 and dispatch_row["batch_seconds"] >= 0


class TestHarness:
    def test_registry_covers_design_index(self):
        assert {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7a", "E7b",
            "E8a", "E8b", "E9", "E10", "E11", "E12", "E13",
        } <= set(EXPERIMENTS)

    def test_run_all_subset(self):
        results = run_all(only=("E1", "E3"))
        assert set(results) == {"E1", "E3"}

    def test_run_all_unknown_id(self):
        with pytest.raises(KeyError):
            run_all(only=("E99",))
