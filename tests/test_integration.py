"""End-to-end integration tests: classifier -> OBDM system -> explanation."""

import pytest

from repro import (
    Labeling,
    Mapping,
    OBDMSpecification,
    OBDMSystem,
    OntologyExplainer,
    SourceDatabase,
    SourceSchema,
    example_3_8_expression,
    parse_ontology,
)
from repro.core.candidates import CandidateConfig
from repro.ml import DecisionTreeClassifier, ThresholdRuleClassifier
from repro.ontologies.loans import build_loan_specification
from repro.workloads import LoanWorkloadConfig, generate_loan_workload


class TestPaperPipeline:
    """The full pipeline of the paper on the running example."""

    def test_quickstart_flow(self, university_system, university_labeling):
        explainer = OntologyExplainer(university_system)
        report = explainer.explain(
            university_labeling,
            radius=1,
            expression=example_3_8_expression(1, 1, 1),
            candidate_config=CandidateConfig(max_atoms=3, max_candidates=500),
            top_k=5,
        )
        # The best generated query reaches at least the score of q3 (0.833),
        # the paper's best query under equal weights.
        assert report.best.score >= 0.833 - 1e-9
        assert report.best.profile.false_positives == 0


class TestClassifierToExplanation:
    """Train a real classifier, explain its predictions through the ontology."""

    def test_loan_decision_tree_explanation(self):
        workload = generate_loan_workload(LoanWorkloadConfig(applicants=40, seed=7))
        dataset = workload.dataset
        classifier = DecisionTreeClassifier(max_depth=3).fit(dataset.X, dataset.y)
        labeling = dataset.predicted_labeling(classifier)

        system = OBDMSystem(build_loan_specification(), workload.database)
        explainer = OntologyExplainer(system)
        report = explainer.explain(
            labeling,
            radius=1,
            expression=example_3_8_expression(2, 2, 1),
            candidate_config=CandidateConfig(max_atoms=2, max_candidates=250),
            top_k=3,
        )
        best = report.best
        assert best is not None
        # The explanation must be faithful on the negative side: the tree
        # rejects low-income applicants, and so must the query.
        assert best.profile.negative_exclusion() >= 0.8
        assert best.profile.positive_coverage() >= 0.6

    def test_rule_classifier_is_perfectly_explainable(self):
        workload = generate_loan_workload(LoanWorkloadConfig(applicants=40, seed=9, label_noise=0.0))
        dataset = workload.dataset
        # A classifier that approves exactly the non-low-income applicants
        # (income >= 25k is the 'low' band boundary used by the generator).
        rule = ThresholdRuleClassifier.from_strings(["income > 25000"], dataset.feature_names)
        rule.fit(dataset.X, dataset.y)
        labeling = dataset.predicted_labeling(rule)

        system = OBDMSystem(build_loan_specification(), workload.database)
        explainer = OntologyExplainer(system)
        report = explainer.explain(
            labeling,
            radius=1,
            expression=example_3_8_expression(3, 3, 1),
            candidate_config=CandidateConfig(max_atoms=2, max_candidates=250),
            top_k=5,
        )
        # 'LowIncomeApplicant' describes exactly the rejected applicants, so
        # the inverted labeling admits a perfect explanation; for the positive
        # side the framework should still reach high fidelity.
        assert report.best.profile.positive_coverage() >= 0.9
        assert report.best.profile.negative_exclusion() >= 0.9


class TestCustomDomainFromScratch:
    """Build a brand-new OBDM system through the public API only."""

    def test_build_and_explain(self):
        ontology = parse_ontology(
            """
            worksOn [= contributesTo
            exists worksOn [= Employee
            Manager [= Employee
            """,
            concept_names=("Employee", "Manager", "CriticalProject"),
            role_names=("worksOn", "contributesTo"),
        )
        schema = SourceSchema(name="hr")
        schema.declare("EMP", ("id", "role"))
        schema.declare("ASSIGN", ("emp", "project"))
        schema.declare("PROJ", ("id", "critical"))

        mapping = Mapping()
        mapping.add_assertion("EMP(x, r)", "Employee(x)")
        mapping.add_assertion("EMP(x, 'manager')", "Manager(x)")
        mapping.add_assertion("ASSIGN(x, p)", "worksOn(x, p)")
        mapping.add_assertion("PROJ(p, 'yes')", "CriticalProject(p)")

        database = SourceDatabase(schema, name="hr_D")
        database.add("EMP", "e1", "manager")
        database.add("EMP", "e2", "engineer")
        database.add("EMP", "e3", "engineer")
        database.add("ASSIGN", "e1", "p1")
        database.add("ASSIGN", "e2", "p1")
        database.add("ASSIGN", "e3", "p2")
        database.add("PROJ", "p1", "yes")
        database.add("PROJ", "p2", "no")

        specification = OBDMSpecification(ontology, schema, mapping)
        system = OBDMSystem(specification, database)
        labeling = Labeling(positives=["e1", "e2"], negatives=["e3"], name="promoted")

        explainer = OntologyExplainer(system)
        report = explainer.explain(
            labeling,
            radius=1,
            candidate_config=CandidateConfig(max_atoms=2, max_candidates=200),
            top_k=3,
        )
        best = report.best
        assert best.profile.is_perfect_separation()
        # The perfect explanation is "works on / contributes to the critical
        # project" — any of the involved predicates is acceptable.
        assert any(
            predicate in str(best.query)
            for predicate in ("CriticalProject", "worksOn", "contributesTo")
        )

        separability = explainer.separability(labeling, radius=1)
        assert separability.separable is True
