"""Unit tests for the from-scratch classifiers."""

import numpy as np
import pytest

from repro.errors import DatasetError, NotFittedError
from repro.ml import (
    DecisionStump,
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNearestNeighbors,
    LogisticRegression,
    ThresholdRuleClassifier,
    normalize_labels,
)

RNG = np.random.default_rng(42)


def linearly_separable(n=120):
    """Two Gaussian blobs separated along the first feature."""
    positive = RNG.normal(loc=(2.0, 0.0), scale=0.5, size=(n // 2, 2))
    negative = RNG.normal(loc=(-2.0, 0.0), scale=0.5, size=(n // 2, 2))
    X = np.vstack([positive, negative])
    y = np.array([1] * (n // 2) + [-1] * (n // 2))
    return X, y


def xor_like(n=200):
    """A dataset a linear model cannot fit but a depth-2 tree can."""
    X = RNG.uniform(-1, 1, size=(n, 2))
    y = np.where((X[:, 0] > 0) ^ (X[:, 1] > 0), 1, -1)
    return X, y


ALL_CLASSIFIERS = [
    DecisionTreeClassifier,
    LogisticRegression,
    GaussianNaiveBayes,
    KNearestNeighbors,
    DecisionStump,
]


class TestCommonBehaviour:
    @pytest.mark.parametrize("classifier_class", ALL_CLASSIFIERS)
    def test_fit_predict_separable(self, classifier_class):
        X, y = linearly_separable()
        classifier = classifier_class().fit(X, y)
        assert classifier.score(X, y) >= 0.95

    @pytest.mark.parametrize("classifier_class", ALL_CLASSIFIERS)
    def test_predictions_are_plus_minus_one(self, classifier_class):
        X, y = linearly_separable(60)
        predictions = classifier_class().fit(X, y).predict(X)
        assert set(np.unique(predictions)) <= {-1, 1}

    @pytest.mark.parametrize("classifier_class", ALL_CLASSIFIERS)
    def test_predict_before_fit_raises(self, classifier_class):
        with pytest.raises(NotFittedError):
            classifier_class().predict([[0.0, 0.0]])

    @pytest.mark.parametrize("classifier_class", ALL_CLASSIFIERS)
    def test_probabilities_in_unit_interval(self, classifier_class):
        X, y = linearly_separable(60)
        probabilities = classifier_class().fit(X, y).predict_proba(X)
        assert np.all(probabilities >= 0.0) and np.all(probabilities <= 1.0)

    @pytest.mark.parametrize("classifier_class", ALL_CLASSIFIERS)
    def test_feature_count_mismatch_rejected(self, classifier_class):
        X, y = linearly_separable(60)
        classifier = classifier_class().fit(X, y)
        with pytest.raises(DatasetError):
            classifier.predict([[1.0, 2.0, 3.0]])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(DatasetError):
            DecisionTreeClassifier().fit([[1.0], [2.0]], [1])

    def test_empty_training_set_rejected(self):
        with pytest.raises(DatasetError):
            LogisticRegression().fit(np.empty((0, 2)), np.empty((0,)))


class TestNormalizeLabels:
    def test_zero_one_encoding(self):
        assert list(normalize_labels([0, 1, 0, 1])) == [-1, 1, -1, 1]

    def test_plus_minus_passthrough(self):
        assert list(normalize_labels([-1, 1])) == [-1, 1]

    def test_boolean_encoding(self):
        assert list(normalize_labels([True, False])) == [1, -1]

    def test_three_classes_rejected(self):
        with pytest.raises(DatasetError):
            normalize_labels([0, 1, 2])


class TestDecisionTree:
    def test_fits_xor(self):
        X, y = xor_like()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert tree.score(X, y) >= 0.9

    def test_depth_limit_respected(self):
        X, y = xor_like()
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth() <= 2

    def test_rules_extraction(self):
        X, y = linearly_separable(60)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        rules = tree.rules(["income", "age"])
        assert rules and all("THEN" in rule for rule in rules)

    def test_node_count_positive(self):
        X, y = linearly_separable(60)
        assert DecisionTreeClassifier().fit(X, y).node_count() >= 1

    def test_deterministic(self):
        X, y = xor_like()
        first = DecisionTreeClassifier(max_depth=3).fit(X, y).predict(X)
        second = DecisionTreeClassifier(max_depth=3).fit(X, y).predict(X)
        assert np.array_equal(first, second)


class TestLogisticRegression:
    def test_xor_is_hard_for_linear_model(self):
        X, y = xor_like()
        model = LogisticRegression(iterations=300).fit(X, y)
        assert model.score(X, y) < 0.8

    def test_coefficients_shape(self):
        X, y = linearly_separable()
        model = LogisticRegression().fit(X, y)
        assert model.coefficients().shape == (2,)

    def test_regularisation_shrinks_weights(self):
        X, y = linearly_separable()
        free = LogisticRegression(l2=0.0).fit(X, y)
        shrunk = LogisticRegression(l2=5.0).fit(X, y)
        assert np.linalg.norm(shrunk.coefficients()) < np.linalg.norm(free.coefficients())

    def test_invalid_hyperparameters(self):
        with pytest.raises(DatasetError):
            LogisticRegression(learning_rate=0)
        with pytest.raises(DatasetError):
            LogisticRegression(iterations=0)


class TestNaiveBayesAndKNN:
    def test_naive_bayes_single_class_degenerate(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([1, 1])
        model = GaussianNaiveBayes().fit(X, y)
        assert set(model.predict(X)) == {1}

    def test_knn_k_larger_than_dataset(self):
        X, y = linearly_separable(10)
        model = KNearestNeighbors(k=50).fit(X, y)
        assert model.predict(X).shape == (10,)

    def test_knn_invalid_k(self):
        with pytest.raises(DatasetError):
            KNearestNeighbors(k=0)

    def test_knn_memorises_training_data(self):
        X, y = xor_like(80)
        model = KNearestNeighbors(k=1).fit(X, y)
        assert model.score(X, y) == 1.0


class TestRuleClassifiers:
    def test_threshold_rule_from_strings(self):
        rule = ThresholdRuleClassifier.from_strings(
            ["income >= 40000", "amount < 50000"], ["income", "amount"]
        )
        X = np.array([[50_000, 10_000], [30_000, 10_000], [60_000, 80_000]])
        rule.fit(X, [1, -1, -1])
        assert list(rule.predict(X)) == [1, -1, -1]

    def test_threshold_rule_describe(self):
        rule = ThresholdRuleClassifier.from_strings(["income >= 40000"], ["income"])
        assert "income >= 40000" in rule.describe()

    def test_threshold_rule_unknown_feature_rejected(self):
        with pytest.raises(DatasetError):
            ThresholdRuleClassifier.from_strings(["salary > 3"], ["income"])

    def test_decision_stump_picks_informative_feature(self):
        X, y = linearly_separable()
        stump = DecisionStump().fit(X, y)
        assert stump.feature_ == 0
