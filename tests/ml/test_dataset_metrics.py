"""Unit tests for tabular datasets and classification metrics."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.ml import (
    DecisionTreeClassifier,
    TabularDataset,
    accuracy,
    balanced_accuracy,
    classification_report,
    confusion_matrix,
    f1_score,
    precision,
    recall,
)


def make_dataset(rows=20):
    records = []
    for index in range(rows):
        records.append(
            {
                "id": f"APP{index:03d}",
                "income": 10_000.0 + 2_000.0 * index,
                "age": 20.0 + index,
                "label": 1 if index % 2 == 0 else -1,
            }
        )
    return TabularDataset.from_records(records, key_column="id", label_column="label")


class TestTabularDataset:
    def test_from_records_shapes(self):
        dataset = make_dataset()
        assert len(dataset) == 20
        assert dataset.X.shape == (20, 2)
        assert set(dataset.feature_names) == {"income", "age"}

    def test_label_normalisation(self):
        records = [
            {"id": "a", "f": 1.0, "label": 0},
            {"id": "b", "f": 2.0, "label": 1},
        ]
        dataset = TabularDataset.from_records(records, "id", "label")
        assert sorted(dataset.labels) == [-1, 1]

    def test_missing_key_column_rejected(self):
        with pytest.raises(DatasetError):
            TabularDataset.from_records([{"f": 1.0, "label": 1}], "id", "label")

    def test_inconsistent_sizes_rejected(self):
        with pytest.raises(DatasetError):
            TabularDataset(["a"], ["f"], [[1.0], [2.0]], [1, -1])

    def test_train_test_split_partition(self):
        dataset = make_dataset(30)
        train, test = dataset.train_test_split(test_fraction=0.3, seed=1)
        assert len(train) + len(test) == 30
        assert set(train.keys).isdisjoint(test.keys)

    def test_train_test_split_deterministic(self):
        dataset = make_dataset(30)
        first = dataset.train_test_split(seed=5)[1].keys
        second = dataset.train_test_split(seed=5)[1].keys
        assert first == second

    def test_invalid_test_fraction(self):
        with pytest.raises(DatasetError):
            make_dataset().train_test_split(test_fraction=1.5)

    def test_true_labeling_bridge(self):
        dataset = make_dataset(10)
        labeling = dataset.true_labeling()
        assert len(labeling.positives) == 5
        assert len(labeling.negatives) == 5

    def test_predicted_labeling_bridge(self):
        dataset = make_dataset(20)
        classifier = DecisionTreeClassifier(max_depth=3).fit(dataset.X, dataset.y)
        labeling = dataset.predicted_labeling(classifier)
        assert len(labeling) == 20

    def test_class_balance(self):
        balance = make_dataset(10).class_balance()
        assert balance[1] == 5 and balance[-1] == 5

    def test_subset(self):
        dataset = make_dataset(10)
        subset = dataset.subset([0, 1, 2])
        assert len(subset) == 3
        assert subset.keys == dataset.keys[:3]


class TestMetrics:
    TRUTH = [1, 1, 1, -1, -1, -1]
    PREDICTIONS = [1, 1, -1, -1, -1, 1]

    def test_confusion_matrix(self):
        counts = confusion_matrix(self.TRUTH, self.PREDICTIONS)
        assert counts == {"tp": 2, "fp": 1, "fn": 1, "tn": 2}

    def test_accuracy(self):
        assert accuracy(self.TRUTH, self.PREDICTIONS) == pytest.approx(4 / 6)

    def test_precision_recall_f1(self):
        assert precision(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)
        assert recall(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)
        assert f1_score(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)

    def test_balanced_accuracy(self):
        assert balanced_accuracy(self.TRUTH, self.PREDICTIONS) == pytest.approx(2 / 3)

    def test_perfect_predictions(self):
        assert accuracy(self.TRUTH, self.TRUTH) == 1.0
        assert f1_score(self.TRUTH, self.TRUTH) == 1.0

    def test_degenerate_no_positive_predictions(self):
        truth = [1, -1]
        predictions = [-1, -1]
        assert precision(truth, predictions) == 0.0
        assert f1_score(truth, predictions) == 0.0

    def test_classification_report_keys(self):
        report = classification_report(self.TRUTH, self.PREDICTIONS)
        assert {"tp", "fp", "fn", "tn", "accuracy", "precision", "recall", "f1"} <= set(report)

    def test_length_mismatch_rejected(self):
        with pytest.raises(DatasetError):
            accuracy([1, -1], [1])

    def test_zero_one_encoding_accepted(self):
        assert accuracy([0, 1], [0, 1]) == 1.0
