"""Unit tests for DL-Lite_R syntax objects and the Ontology container."""

import pytest

from repro.dl.ontology import Ontology, disjoint, domain_of, range_of, subclass, subrole
from repro.dl.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    RoleInclusion,
    exists,
    is_basic_concept,
    role_of,
)
from repro.errors import OntologyError


class TestRoles:
    def test_inverse_roundtrip(self):
        role = AtomicRole("studies")
        assert role.inverse().inverse() == role

    def test_predicate_of_inverse(self):
        assert AtomicRole("studies").inverse().predicate == "studies"

    def test_role_of_helper(self):
        assert role_of("teaches") == AtomicRole("teaches")
        assert role_of("teaches", inverse=True) == InverseRole(AtomicRole("teaches"))

    def test_empty_name_rejected(self):
        with pytest.raises(OntologyError):
            AtomicRole("")


class TestConcepts:
    def test_exists_helper(self):
        assert exists("studies") == ExistentialRestriction(AtomicRole("studies"))
        assert exists("studies", inverse=True).role == AtomicRole("studies").inverse()

    def test_is_basic_concept(self):
        assert is_basic_concept(AtomicConcept("Student"))
        assert is_basic_concept(exists("studies"))
        assert not is_basic_concept(NegatedConcept(AtomicConcept("Student")))

    def test_negation_not_allowed_on_lhs(self):
        with pytest.raises(OntologyError):
            ConceptInclusion(NegatedConcept(AtomicConcept("A")), AtomicConcept("B"))


class TestAxiomBuilders:
    def test_subclass(self):
        axiom = subclass("Student", "Person")
        assert axiom.lhs == AtomicConcept("Student")
        assert axiom.is_positive()

    def test_subrole(self):
        axiom = subrole("studies", "likes")
        assert isinstance(axiom, RoleInclusion)
        assert axiom.is_positive()

    def test_domain_and_range(self):
        domain_axiom = domain_of("teaches", "Teacher")
        range_axiom = range_of("teaches", "Course")
        assert domain_axiom.lhs == exists("teaches")
        assert range_axiom.lhs == exists("teaches", inverse=True)

    def test_disjoint_is_negative(self):
        axiom = disjoint("Undergraduate", "Graduate")
        assert not axiom.is_positive()


class TestOntology:
    def test_vocabulary_collection(self):
        ontology = Ontology()
        ontology.add_axiom(subrole("studies", "likes"))
        ontology.add_axiom(subclass("Student", "Person"))
        assert "studies" in ontology.role_names
        assert "likes" in ontology.role_names
        assert "Student" in ontology.concept_names

    def test_arity_of(self):
        ontology = Ontology(concept_names=["Student"], role_names=["studies"])
        assert ontology.arity_of("Student") == 1
        assert ontology.arity_of("studies") == 2
        with pytest.raises(OntologyError):
            ontology.arity_of("unknown")

    def test_duplicate_axioms_not_repeated(self):
        ontology = Ontology()
        ontology.add_axiom(subrole("studies", "likes"))
        ontology.add_axiom(subrole("studies", "likes"))
        assert len(ontology) == 1

    def test_positive_negative_partition(self):
        ontology = Ontology()
        ontology.add_axioms([subclass("A", "B"), disjoint("A", "C")])
        assert len(ontology.positive_concept_inclusions()) == 1
        assert len(ontology.negative_concept_inclusions()) == 1

    def test_declare_and_contains(self):
        ontology = Ontology()
        ontology.declare_concept("Loan")
        ontology.declare_role("appliesFor")
        assert ontology.has_predicate("Loan")
        assert ontology.has_predicate("appliesFor")
        axiom = subclass("SmallLoan", "Loan")
        ontology.add_axiom(axiom)
        assert axiom in ontology

    def test_copy_is_independent(self):
        ontology = Ontology()
        ontology.add_axiom(subclass("A", "B"))
        duplicate = ontology.copy()
        duplicate.add_axiom(subclass("B", "C"))
        assert len(ontology) == 1
        assert len(duplicate) == 2
