"""Unit tests for the DL-Lite axiom/ontology text parser."""

import pytest

from repro.dl.ontology import Ontology
from repro.dl.parser import parse_axiom, parse_axioms, parse_ontology
from repro.dl.syntax import (
    AtomicConcept,
    AtomicRole,
    ConceptInclusion,
    ExistentialRestriction,
    InverseRole,
    NegatedConcept,
    NegatedRole,
    RoleInclusion,
)
from repro.errors import OntologyParseError


class TestParseAxiom:
    def test_role_inclusion_lowercase(self):
        axiom = parse_axiom("studies [= likes")
        assert isinstance(axiom, RoleInclusion)
        assert axiom.lhs == AtomicRole("studies")
        assert axiom.rhs == AtomicRole("likes")

    def test_concept_inclusion_uppercase(self):
        axiom = parse_axiom("Student [= Person")
        assert isinstance(axiom, ConceptInclusion)
        assert axiom.lhs == AtomicConcept("Student")

    def test_unicode_inclusion_symbol(self):
        axiom = parse_axiom("studies ⊑ likes")
        assert isinstance(axiom, RoleInclusion)

    def test_domain_axiom(self):
        axiom = parse_axiom("exists teaches [= Teacher")
        assert axiom.lhs == ExistentialRestriction(AtomicRole("teaches"))
        assert axiom.rhs == AtomicConcept("Teacher")

    def test_range_axiom_with_suffix_inverse(self):
        axiom = parse_axiom("exists teaches- [= Course")
        assert axiom.lhs == ExistentialRestriction(InverseRole(AtomicRole("teaches")))

    def test_range_axiom_with_inv_function(self):
        axiom = parse_axiom("exists inv(teaches) [= Course")
        assert axiom.lhs == ExistentialRestriction(InverseRole(AtomicRole("teaches")))

    def test_mandatory_participation(self):
        axiom = parse_axiom("Student [= exists enrolledIn")
        assert axiom.rhs == ExistentialRestriction(AtomicRole("enrolledIn"))

    def test_concept_disjointness(self):
        axiom = parse_axiom("Undergraduate [= not Graduate")
        assert isinstance(axiom.rhs, NegatedConcept)
        assert not axiom.is_positive()

    def test_role_disjointness(self):
        axiom = parse_axiom("teaches [= not attends")
        assert isinstance(axiom, RoleInclusion)
        assert isinstance(axiom.rhs, NegatedRole)

    def test_vocabulary_overrides_capitalisation(self):
        ontology = Ontology(concept_names=["student"], role_names=[])
        axiom = parse_axiom("student [= person", ontology)
        assert isinstance(axiom, ConceptInclusion)

    def test_negation_on_lhs_rejected(self):
        with pytest.raises(OntologyParseError):
            parse_axiom("not A [= B")

    def test_missing_inclusion_rejected(self):
        with pytest.raises(OntologyParseError):
            parse_axiom("Student Person")

    def test_two_inclusions_rejected(self):
        with pytest.raises(OntologyParseError):
            parse_axiom("A [= B [= C")


class TestParseAxiomsAndOntology:
    TEXT = """
    # the university ontology
    studies [= likes
    Student [= Person
    exists studies [= Student ;
    Undergraduate [= not Graduate
    """

    def test_parse_axioms_skips_comments(self):
        axioms = parse_axioms(self.TEXT)
        assert len(axioms) == 4

    def test_parse_ontology_vocabulary(self):
        ontology = parse_ontology(self.TEXT, name="uni")
        assert "studies" in ontology.role_names
        assert "Person" in ontology.concept_names
        assert len(ontology) == 4

    def test_predeclared_vocabulary(self):
        ontology = parse_ontology("a [= b", concept_names=["a", "b"])
        assert len(ontology.concept_inclusions()) == 1
