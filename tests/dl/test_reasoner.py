"""Unit tests for the DL-Lite_R structural reasoner."""

import pytest

from repro.dl.normalize import normalize, positive_closure
from repro.dl.ontology import Ontology, disjoint, domain_of, range_of, subclass, subrole
from repro.dl.reasoner import Reasoner, invert
from repro.dl.syntax import AtomicConcept, AtomicRole, ExistentialRestriction, InverseRole
from repro.queries.atoms import Atom


def build_ontology() -> Ontology:
    ontology = Ontology(name="test")
    ontology.add_axioms(
        [
            subrole("studies", "likes"),
            subrole("likes", "interestedIn"),
            subclass("Undergraduate", "Student"),
            subclass("Student", "Person"),
            domain_of("studies", "Student"),
            range_of("studies", "Subject"),
            disjoint("Student", "Subject"),
        ]
    )
    return ontology


@pytest.fixture()
def reasoner():
    return Reasoner(build_ontology())


class TestRoleHierarchy:
    def test_direct_subsumption(self, reasoner):
        assert reasoner.is_role_subsumed(AtomicRole("studies"), AtomicRole("likes"))

    def test_transitive_subsumption(self, reasoner):
        assert reasoner.is_role_subsumed(AtomicRole("studies"), AtomicRole("interestedIn"))

    def test_inverse_propagation(self, reasoner):
        assert reasoner.is_role_subsumed(
            AtomicRole("studies").inverse(), AtomicRole("likes").inverse()
        )

    def test_no_reverse_subsumption(self, reasoner):
        assert not reasoner.is_role_subsumed(AtomicRole("likes"), AtomicRole("studies"))

    def test_reflexivity(self, reasoner):
        assert reasoner.is_role_subsumed(AtomicRole("studies"), AtomicRole("studies"))

    def test_subsumees(self, reasoner):
        subsumees = reasoner.role_subsumees(AtomicRole("interestedIn"))
        assert AtomicRole("studies") in subsumees
        assert AtomicRole("likes") in subsumees


class TestConceptHierarchy:
    def test_atomic_chain(self, reasoner):
        assert reasoner.is_subsumed(AtomicConcept("Undergraduate"), AtomicConcept("Person"))

    def test_domain_axiom(self, reasoner):
        assert reasoner.is_subsumed(
            ExistentialRestriction(AtomicRole("studies")), AtomicConcept("Student")
        )

    def test_range_axiom(self, reasoner):
        assert reasoner.is_subsumed(
            ExistentialRestriction(AtomicRole("studies").inverse()), AtomicConcept("Subject")
        )

    def test_role_hierarchy_lifts_to_existentials(self, reasoner):
        assert reasoner.is_subsumed(
            ExistentialRestriction(AtomicRole("studies")),
            ExistentialRestriction(AtomicRole("likes")),
        )

    def test_domain_through_role_hierarchy_and_concepts(self, reasoner):
        # exists studies ⊑ Student ⊑ Person
        assert reasoner.is_subsumed(
            ExistentialRestriction(AtomicRole("studies")), AtomicConcept("Person")
        )

    def test_not_subsumed(self, reasoner):
        assert not reasoner.is_subsumed(AtomicConcept("Person"), AtomicConcept("Student"))

    def test_classification_covers_all_basic_concepts(self, reasoner):
        classification = reasoner.classify()
        assert AtomicConcept("Student") in classification
        assert all(concept in subsumers for concept, subsumers in classification.items())

    def test_hierarchy_pairs_are_strict(self, reasoner):
        pairs = reasoner.concept_hierarchy_pairs()
        assert (AtomicConcept("Undergraduate"), AtomicConcept("Person")) in pairs
        assert all(first != second for first, second in pairs)


class TestDisjointness:
    def test_declared_disjointness(self, reasoner):
        assert reasoner.are_disjoint(AtomicConcept("Student"), AtomicConcept("Subject"))

    def test_inherited_disjointness(self, reasoner):
        assert reasoner.are_disjoint(AtomicConcept("Undergraduate"), AtomicConcept("Subject"))

    def test_satisfiability(self, reasoner):
        assert reasoner.is_concept_satisfiable(AtomicConcept("Student"))

    def test_abox_consistency_violation(self, reasoner):
        violations = reasoner.check_abox_consistency(
            [Atom.of("Undergraduate", "a"), Atom.of("Subject", "a")]
        )
        assert violations

    def test_abox_consistency_ok(self, reasoner):
        violations = reasoner.check_abox_consistency(
            [Atom.of("Undergraduate", "a"), Atom.of("Subject", "math")]
        )
        assert violations == []

    def test_role_fact_triggers_domain_disjointness(self, reasoner):
        # studies(a, a) makes a both a Student (domain) and a Subject (range).
        violations = reasoner.check_abox_consistency([Atom.of("studies", "a", "a")])
        assert violations


class TestNormalize:
    def test_trivial_axioms_removed(self):
        ontology = Ontology()
        ontology.add_axiom(subclass("A", "A"))
        ontology.add_axiom(subclass("A", "B"))
        assert len(normalize(ontology)) == 1

    def test_double_inverse_flattened(self):
        ontology = Ontology()
        double = InverseRole(AtomicRole("r")).inverse()
        assert double == AtomicRole("r")

    def test_positive_closure_contains_transitive_edges(self):
        concept_pairs, role_pairs = positive_closure(build_ontology())
        assert (AtomicConcept("Undergraduate"), AtomicConcept("Person")) in concept_pairs
        assert (AtomicRole("studies"), AtomicRole("interestedIn")) in role_pairs

    def test_normalization_preserves_entailments(self):
        original = build_ontology()
        normalized = normalize(original)
        assert positive_closure(original) == positive_closure(normalized)


class TestInvert:
    def test_invert_atomic_and_inverse(self):
        role = AtomicRole("r")
        assert invert(role) == InverseRole(role)
        assert invert(InverseRole(role)) == role
