"""Unit tests for mapping assertions and virtual ABox retrieval."""

import pytest

from repro.errors import MappingError
from repro.obdm.database import SourceDatabase
from repro.obdm.mapping import Mapping, MappingAssertion
from repro.obdm.schema import SourceSchema
from repro.obdm.virtual_abox import retrieve_abox
from repro.queries.atoms import Atom
from repro.queries.parser import parse_cq


@pytest.fixture()
def database():
    schema = SourceSchema(name="S")
    schema.declare("ENR", ("student", "subject", "university"))
    schema.declare("LOC", ("university", "city"))
    database = SourceDatabase(schema, name="D")
    database.add("ENR", "A10", "Math", "TV")
    database.add("ENR", "C12", "Science", "Norm")
    database.add("LOC", "TV", "Rome")
    return database


class TestMappingAssertion:
    def test_atom_source_shorthand(self, database):
        assertion = MappingAssertion.create("ENR(x, y, z)", "studies(x, y)")
        facts = assertion.apply(database)
        assert Atom.of("studies", "A10", "Math") in facts
        assert len(facts) == 2

    def test_rule_source(self, database):
        assertion = MappingAssertion.create(
            "m(x) :- ENR(x, y, z), LOC(z, 'Rome')", "StudentInRome(x)"
        )
        facts = assertion.apply(database)
        assert facts == {Atom.of("StudentInRome", "A10")}

    def test_multiple_targets(self, database):
        assertion = MappingAssertion.create("ENR(x, y, z)", ["studies(x, y)", "taughtIn(y, z)"])
        facts = assertion.apply(database)
        assert Atom.of("taughtIn", "Science", "Norm") in facts
        assert len(facts) == 4

    def test_constant_in_source_pattern(self, database):
        assertion = MappingAssertion.create("ENR(x, 'Math', z)", "MathStudent(x)")
        assert assertion.apply(database) == {Atom.of("MathStudent", "A10")}

    def test_constant_in_target(self, database):
        assertion = MappingAssertion.create("ENR(x, y, z)", "hasLevel(x, 'BSc')")
        facts = assertion.apply(database)
        assert Atom.of("hasLevel", "A10", "BSc") in facts

    def test_sql_source(self, database):
        assertion = MappingAssertion.create(
            "SELECT e.student, e.subject FROM ENR AS e WHERE e.university = 'TV'",
            "studies(x, y)",
        )
        assert assertion.apply(database) == {Atom.of("studies", "A10", "Math")}

    def test_unknown_target_variable_rejected(self):
        with pytest.raises(MappingError):
            MappingAssertion.create("ENR(x, y, z)", "studies(x, w)")

    def test_empty_targets_rejected(self):
        with pytest.raises(MappingError):
            MappingAssertion(parse_cq("m(x) :- ENR(x, y, z)"), ())

    def test_str_contains_label(self):
        assertion = MappingAssertion.create("ENR(x, y, z)", "studies(x, y)", label="m1")
        assert "m1" in str(assertion)


class TestMapping:
    def test_apply_union_of_assertions(self, database):
        mapping = Mapping(name="M")
        mapping.add_assertion("ENR(x, y, z)", "studies(x, y)")
        mapping.add_assertion("LOC(x, y)", "locatedIn(x, y)")
        facts = mapping.apply(database)
        assert Atom.of("locatedIn", "TV", "Rome") in facts
        assert len(facts) == 3

    def test_from_pairs(self, database):
        mapping = Mapping.from_pairs(
            [("ENR(x, y, z)", "studies(x, y)"), ("ENR(x, y, z)", "taughtIn(y, z)")]
        )
        assert len(mapping) == 2
        assert mapping.target_predicates() == {"studies", "taughtIn"}
        assert mapping.source_predicates() == {"ENR"}

    def test_retrieve_abox_wrapper(self, database):
        mapping = Mapping.from_pairs([("ENR(x, y, z)", "studies(x, y)")])
        abox = retrieve_abox(mapping, database)
        assert len(abox) == 2
        assert abox.predicates() == {"studies"}
        assert Atom.of("studies", "A10", "Math") in abox

    def test_soundness_only_positive_facts(self, database):
        # Sound mappings only *add* facts derived from the source; the
        # retrieved ABox never mentions predicates without a matching row.
        mapping = Mapping.from_pairs([("ENR(x, 'Law', z)", "studies(x, 'Law')")])
        assert len(mapping.apply(database)) == 0
