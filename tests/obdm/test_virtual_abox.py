"""Unit tests for virtual ABox retrieval and the errors module."""

import pytest

from repro import errors
from repro.obdm.virtual_abox import VirtualABox, retrieve_abox
from repro.ontologies.university import build_university_database, build_university_mapping
from repro.queries.atoms import Atom


class TestVirtualABox:
    def test_retrieval_from_paper_mapping(self):
        abox = retrieve_abox(build_university_mapping(), build_university_database())
        # 5 studies facts + 5 taughtIn facts (one per enrolment, deduplicated)
        # + 3 locatedIn facts.
        assert len(abox) == 13
        assert Atom.of("taughtIn", "Math", "TV") in abox

    def test_index_reuse(self):
        abox = retrieve_abox(build_university_mapping(), build_university_database())
        assert abox.index is abox.index  # cached

    def test_iteration_sorted_and_str(self):
        abox = VirtualABox([Atom.of("B", "b"), Atom.of("A", "a")], source_name="D")
        assert [fact.predicate for fact in abox] == ["A", "B"]
        assert "2 facts" in str(abox)

    def test_predicates(self):
        abox = VirtualABox([Atom.of("A", "a"), Atom.of("B", "b")])
        assert abox.predicates() == {"A", "B"}


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not Exception:
                assert issubclass(obj, errors.ReproError)

    def test_search_budget_carries_partial_result(self):
        exception = errors.SearchBudgetExceeded("too slow", best_so_far="q")
        assert exception.best_so_far == "q"

    def test_specific_subclassing(self):
        assert issubclass(errors.QueryParseError, errors.QueryError)
        assert issubclass(errors.CertainAnswerError, errors.OBDMError)
        assert issubclass(errors.CriterionError, errors.ExplanationError)
