"""Differential suite: whole-rewriting SQL pushdown vs in-memory evaluation.

PR 10 routes the certain-answer check through one pushed-down SQL
statement per rewritten UCQ (``SQLiteBackend.ucq_certain_answers`` /
``ucq_contains_tuple``) behind ``engine.pushdown.enabled``.  The
contract is *byte identity*: every answer set, membership verdict and
served ranking must match the legacy in-memory evaluation exactly,
across all four domains, with fallbacks counted (never raised) off the
SQL backend.
"""

import pytest

from repro.engine.cache import CacheLimits
from repro.experiments.kernel_exp import (
    PROBE_DOMAINS,
    build_probe_system,
    probe_labeling,
    probe_pool,
)
from repro.gateway.registry import ServiceRegistry
from repro.obdm.backend import PushdownUnsupported, SQLiteBackend
from repro.obdm.system import OBDMSystem
from repro.queries.atoms import Atom
from repro.queries.cq import ConjunctiveQuery
from repro.queries.evaluation import FactIndex
from repro.queries.terms import Constant
from repro.queries.ucq import UnionOfConjunctiveQueries
from repro.service import ExplanationService

pytestmark = pytest.mark.backend


def fresh_engine(domain: str):
    """A fresh system + engine (cold memos, zero counters) for one domain."""
    system = build_probe_system(domain)
    return system, system.specification.engine


class TestPushdownDifferential:
    """certain_answers / is_certain_answer identity across backends."""

    @pytest.mark.parametrize("domain", PROBE_DOMAINS)
    def test_answer_sets_identical(self, domain):
        memory_system, memory_engine = fresh_engine(domain)
        sqlite_system, sqlite_engine = fresh_engine(domain)
        nopush_system, nopush_engine = fresh_engine(domain)
        memory_db = memory_system.database
        sqlite_db = memory_db.with_backend("sqlite", name="pd_sqlite")
        nopush_db = memory_db.with_backend(
            SQLiteBackend(pushdown=False), name="pd_nopush"
        )
        for query in probe_pool(memory_system):
            expected = memory_engine.certain_answers(query, memory_db)
            assert sqlite_engine.certain_answers(query, sqlite_db) == expected
            assert nopush_engine.certain_answers(query, nopush_db) == expected
        stats = sqlite_engine.cache.stats
        assert stats.pushdown_misses > 0
        assert stats.pushdown_fallbacks == 0
        assert nopush_engine.cache.stats.pushdown_fallbacks > 0

    @pytest.mark.parametrize("domain", PROBE_DOMAINS)
    def test_membership_identical(self, domain):
        memory_system, memory_engine = fresh_engine(domain)
        _sqlite_system, sqlite_engine = fresh_engine(domain)
        memory_db = memory_system.database
        sqlite_db = memory_db.with_backend("sqlite", name="pd_sqlite")
        for query in probe_pool(memory_system):
            if query.arity != 1:
                continue
            answers = memory_engine.certain_answers(query, memory_db)
            candidates = sorted(answers, key=repr)[:3] + [(Constant("NOPE"),)]
            for candidate in candidates:
                expected = memory_engine.is_certain_answer(query, candidate, memory_db)
                assert (
                    sqlite_engine.is_certain_answer(query, candidate, sqlite_db)
                    == expected
                ), (str(query), candidate)

    def test_pushdown_toggle_off_matches_on(self):
        system, _ = fresh_engine("loans")
        sqlite_db = system.database.with_backend("sqlite", name="pd_sqlite")
        _on_system, on_engine = fresh_engine("loans")
        _off_system, off_engine = fresh_engine("loans")
        off_engine.pushdown.enabled = False
        for query in probe_pool(system):
            assert on_engine.certain_answers(query, sqlite_db) == (
                off_engine.certain_answers(query, sqlite_db)
            )
        # The disabled engine never even attempted a pushdown.
        stats = off_engine.cache.stats
        assert stats.pushdown_misses == 0
        assert stats.pushdown_hits == 0
        assert stats.pushdown_fallbacks == 0


class TestFallbackCounting:
    def test_memory_backend_counts_fallbacks(self):
        system, engine = fresh_engine("loans")
        query = probe_pool(system)[0]
        engine.certain_answers(query, system.database)
        engine.is_certain_answer(query, (Constant("NOPE"),), system.database)
        stats = engine.cache.stats
        assert stats.pushdown_fallbacks == 2
        assert stats.pushdown_misses == 0
        assert stats.pushdown_hits == 0

    def test_sqlite_backend_memoizes_pushdown_results(self):
        system, engine = fresh_engine("loans")
        sqlite_db = system.database.with_backend("sqlite", name="pd_sqlite")
        query = probe_pool(system)[0]
        first = engine.certain_answers(query, sqlite_db)
        assert engine.cache.stats.pushdown_misses == 1
        second = engine.certain_answers(query, sqlite_db)
        assert second == first
        assert engine.cache.stats.pushdown_hits == 1
        assert engine.cache.size_report()["pushdown_results"] == 1

    def test_pushdown_memo_respects_limits(self):
        system, engine = fresh_engine("loans")
        sqlite_db = system.database.with_backend("sqlite", name="pd_sqlite")
        engine.configure_cache_limits(CacheLimits(pushdowns=1))
        pool = [q for q in probe_pool(system) if q.arity == 1][:3]
        for query in pool:
            engine.certain_answers(query, sqlite_db)
        assert engine.cache.size_report()["pushdown_results"] == 1


class TestAboxRegistryEviction:
    def make_query(self):
        return ConjunctiveQuery.of(("?x",), (Atom.of("A", "?x"),), name="q")

    def make_abox(self, index):
        return frozenset(
            {Atom.of("A", f"c{index}"), Atom.of("B", f"c{index}", f"d{index}")}
        )

    def test_eviction_keeps_answers_correct(self):
        backend = SQLiteBackend()
        backend._ABOX_CAPACITY = 2
        query = self.make_query()
        for i in range(3):
            answers = backend.ucq_certain_answers(query, self.make_abox(i))
            assert answers == {(Constant(f"c{i}"),)}
        assert len(backend._abox_ids) == 2
        # The evicted ABox re-registers transparently and still answers.
        assert backend.ucq_certain_answers(query, self.make_abox(0)) == {
            (Constant("c0"),)
        }
        assert len(backend._abox_ids) == 2
        # Compiled plans never outlive their ABox registration.
        live_ids = {entry[0] for entry in backend._abox_ids.values()}
        assert all(key[1] in live_ids for key in backend._ucq_plans)

    def test_closed_backend_raises_unsupported(self):
        backend = SQLiteBackend()
        backend.close()
        with pytest.raises(PushdownUnsupported):
            backend.ucq_certain_answers(self.make_query(), self.make_abox(0))


class TestPushdownEdgeCases:
    """Synthetic UCQ shapes against the in-memory evaluator, bit for bit."""

    FACTS = frozenset(
        {
            Atom.of("A", "a"),
            Atom.of("A", "b"),
            Atom.of("R", "a", "b"),
            Atom.of("R", "b", "b"),
        }
    )

    def both(self, query, facts=None):
        facts = self.FACTS if facts is None else facts
        backend = SQLiteBackend()
        pushed = backend.ucq_certain_answers(query, facts)
        legacy = query.evaluate((), index=FactIndex(facts))
        return pushed, legacy

    def test_boolean_query(self):
        query = UnionOfConjunctiveQueries.single(
            ConjunctiveQuery.of((), (Atom.of("A", "?x"),), name="qb")
        )
        pushed, legacy = self.both(query)
        assert pushed == legacy == {()}
        empty = frozenset({Atom.of("B", "z")})
        pushed, legacy = self.both(query, empty)
        assert pushed == legacy == set()

    def test_join_disjunct(self):
        query = UnionOfConjunctiveQueries.single(
            ConjunctiveQuery.of(
                ("?x",), (Atom.of("A", "?x"), Atom.of("R", "?x", "?y")), name="qj"
            )
        )
        pushed, legacy = self.both(query)
        assert pushed == legacy == {(Constant("a"),), (Constant("b"),)}

    def test_absent_predicate_disjunct_skipped(self):
        query = UnionOfConjunctiveQueries.of(
            (
                ConjunctiveQuery.of(("?x",), (Atom.of("A", "?x"),), name="q1"),
                ConjunctiveQuery.of(("?x",), (Atom.of("MISSING", "?x"),), name="q2"),
            ),
            name="qu",
        )
        pushed, legacy = self.both(query)
        assert pushed == legacy == {(Constant("a"),), (Constant("b"),)}

    def test_duplicate_head_variable_membership(self):
        query = UnionOfConjunctiveQueries.single(
            ConjunctiveQuery.of(("?x", "?x"), (Atom.of("R", "?x", "?y"),), name="qd")
        )
        backend = SQLiteBackend()
        good = (Constant("a"), Constant("a"))
        bad = (Constant("a"), Constant("b"))
        assert backend.ucq_contains_tuple(query, good, self.FACTS) is (
            query.contains_tuple(good, (), index=FactIndex(self.FACTS))
        )
        assert backend.ucq_contains_tuple(query, bad, self.FACTS) is False
        assert query.contains_tuple(bad, (), index=FactIndex(self.FACTS)) is False

    def test_constant_in_body(self):
        query = UnionOfConjunctiveQueries.single(
            ConjunctiveQuery.of(("?x",), (Atom.of("R", "?x", Constant("b")),), name="qc")
        )
        pushed, legacy = self.both(query)
        assert pushed == legacy == {(Constant("a"),), (Constant("b"),)}

    def test_arity_mismatch_membership_is_false(self):
        query = UnionOfConjunctiveQueries.single(
            ConjunctiveQuery.of(("?x",), (Atom.of("A", "?x"),), name="q1")
        )
        backend = SQLiteBackend()
        too_wide = (Constant("a"), Constant("a"))
        assert backend.ucq_contains_tuple(query, too_wide, self.FACTS) is False

    def test_mixed_arity_abox_predicate_unsupported(self):
        backend = SQLiteBackend()
        facts = frozenset({Atom.of("P", "a"), Atom.of("P", "a", "b")})
        query = UnionOfConjunctiveQueries.single(
            ConjunctiveQuery.of(("?x",), (Atom.of("P", "?x"),), name="qm")
        )
        with pytest.raises(PushdownUnsupported):
            backend.ucq_certain_answers(query, facts)


class TestServedRankingIdentity:
    """End-to-end serving through is_certain_answer: three stores, one ranking."""

    def serve(self, database):
        from repro.experiments.scalability import build_loan_pool
        from repro.ontologies.loans import build_loan_specification

        specification = build_loan_specification()
        specification.engine.verdicts.enabled = False
        specification.engine.kernel.enabled = False
        system = OBDMSystem(specification, database, name="pd_served")
        service = ExplanationService(system, radius=0)
        workload = build_loan_pool(12, 8, 4, seed=7)
        render = service.explain(
            workload.labelings[0], candidates=workload.pool, top_k=None
        ).render(top_k=None)
        return render, service

    def test_rankings_and_counters(self):
        from repro.workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload

        base = generate_loan_workload(LoanWorkloadConfig(applicants=12, seed=7)).database
        memory_render, memory_service = self.serve(base)
        sqlite_render, sqlite_service = self.serve(
            base.with_backend("sqlite", name="pd_sql")
        )
        nopush_render, nopush_service = self.serve(
            base.with_backend(SQLiteBackend(pushdown=False), name="pd_nopush")
        )
        assert memory_render == sqlite_render == nopush_render
        sqlite_report = sqlite_service.size_report()
        assert sqlite_report["pushdown_misses"] > 0
        assert sqlite_report["pushdown_fallbacks"] == 0
        assert memory_service.size_report()["pushdown_fallbacks"] > 0
        assert nopush_service.size_report()["pushdown_fallbacks"] > 0


class TestGatewaySurface:
    def test_registry_pushdown_totals(self):
        from repro.experiments.scalability import build_loan_pool
        from repro.ontologies.loans import build_loan_specification
        from repro.workloads.loans_gen import LoanWorkloadConfig, generate_loan_workload

        base = generate_loan_workload(LoanWorkloadConfig(applicants=12, seed=7)).database

        def builder():
            specification = build_loan_specification()
            specification.engine.verdicts.enabled = False
            specification.engine.kernel.enabled = False
            return OBDMSystem(
                specification,
                base.with_backend("sqlite", name="pd_gw"),
                name="pd_gateway",
            )

        registry = ServiceRegistry()
        registry.register("tenant", builder, radius=0)
        totals = registry.pushdown_totals()
        assert totals == {
            "pushdown_hits": 0,
            "pushdown_misses": 0,
            "pushdown_fallbacks": 0,
        }
        service = registry.service("tenant")
        workload = build_loan_pool(12, 8, 4, seed=7)
        service.explain(workload.labelings[0], candidates=workload.pool, top_k=None)
        totals = registry.pushdown_totals()
        assert totals["pushdown_misses"] > 0
        assert totals["pushdown_fallbacks"] == 0
        assert totals["pushdown_misses"] == service.cache_stats.pushdown_misses
        assert totals["pushdown_hits"] == service.cache_stats.pushdown_hits
