"""Storage-backend parity: memory vs SQLite, pushdown, deltas, serving.

The backend abstraction (:mod:`repro.obdm.backend`) promises that a
:class:`~repro.obdm.database.SourceDatabase` behaves identically over
the seed's dict-indexed ``MemoryBackend`` and the out-of-core
``SQLiteBackend`` — same fact sets, same fingerprints, same retrieved
ABoxes, same borders, same served rankings — with SQL pushdown as a
pure optimisation.  These tests pin that contract across all four
domains, including seeded random add/remove streams and
:class:`~repro.obdm.database.DatabaseDelta` round trips.
"""

import random

import pytest

from repro.core.border import BorderComputer
from repro.obdm.backend import (
    MemoryBackend,
    PushdownUnsupported,
    SQLiteBackend,
    decode_constants,
    decode_value,
    encode_constants,
    encode_value,
    resolve_backend,
)
from repro.obdm.database import DatabaseDelta, SourceDatabase
from repro.obdm.virtual_abox import retrieve_abox
from repro.ontologies.compas import build_compas_system
from repro.ontologies.loans import build_loan_system
from repro.ontologies.movies import build_movie_system
from repro.ontologies.university import build_university_system
from repro.queries.atoms import Atom
from repro.queries.terms import Constant
from repro.service import ExplanationService

pytestmark = pytest.mark.backend

SYSTEM_BUILDERS = {
    "university": build_university_system,
    "loan": build_loan_system,
    "movie": build_movie_system,
    "compas": build_compas_system,
}


def sqlite_twin(database, pushdown=True):
    backend = SQLiteBackend(pushdown=pushdown)
    return database.with_backend(backend, name=f"{database.name}_sqlite")


class TestValueCodec:
    VALUES = ["S001", "", "a\x1fb", 0, 1, -7, True, False, 1.0, 2.5, -0.0, 10**20]

    def test_round_trip_up_to_constant_equality(self):
        for value in self.VALUES:
            decoded = decode_value(encode_value(value))
            assert Constant(decoded) == Constant(value)

    def test_encoding_equality_matches_constant_equality(self):
        for a in self.VALUES:
            for b in self.VALUES:
                assert (encode_value(a) == encode_value(b)) == (
                    Constant(a) == Constant(b)
                ), (a, b)

    def test_tuple_codec_round_trip(self):
        args = tuple(Constant(value) for value in self.VALUES)
        assert decode_constants(encode_constants(args)) == args
        assert decode_constants(b"") == ()

    def test_unsupported_value_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            encode_value(object())


class TestResolveBackend:
    def test_names_and_instances(self):
        assert isinstance(resolve_backend(None), MemoryBackend)
        assert isinstance(resolve_backend("memory"), MemoryBackend)
        assert isinstance(resolve_backend("sqlite"), SQLiteBackend)
        backend = SQLiteBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            resolve_backend("postgres")


class TestFingerprintParity:
    @pytest.mark.parametrize("domain", sorted(SYSTEM_BUILDERS))
    def test_content_parity_across_backends(self, domain):
        database = SYSTEM_BUILDERS[domain]().database
        twin = sqlite_twin(database)
        assert twin.backend_name == "sqlite"
        assert database.backend_name == "memory"
        assert len(twin) == len(database)
        assert set(twin.iter_facts()) == set(database.iter_facts())
        assert twin.predicates() == database.predicates()
        assert twin.domain() == database.domain()
        assert twin.fingerprint() == database.fingerprint()

    @pytest.mark.parametrize("domain", sorted(SYSTEM_BUILDERS))
    def test_seeded_add_remove_stream_parity(self, domain):
        database = SYSTEM_BUILDERS[domain]().database
        twin = sqlite_twin(database)
        rng = random.Random(20260807)
        present = sorted(database.iter_facts())
        for step in range(40):
            if present and rng.random() < 0.5:
                fact = present.pop(rng.randrange(len(present)))
                database.remove_fact(fact)
                twin.remove_fact(fact)
            else:
                template = present[rng.randrange(len(present))]
                fresh = Atom(
                    template.predicate,
                    template.args[:-1] + (Constant(f"FRESH_{domain}_{step}"),),
                )
                if fresh in database:
                    continue
                database.add_fact(fresh)
                twin.add_fact(fresh)
                present.append(fresh)
            assert twin.fingerprint() == database.fingerprint(), f"step {step}"
            assert len(twin) == len(database)
        assert set(twin.iter_facts()) == set(database.iter_facts())

    @pytest.mark.parametrize("domain", sorted(SYSTEM_BUILDERS))
    def test_delta_round_trip_parity(self, domain):
        database = SYSTEM_BUILDERS[domain]().database
        twin = sqlite_twin(database)
        before = database.fingerprint()
        facts = sorted(database.iter_facts())
        removed = facts[:3]
        added = [
            Atom(fact.predicate, fact.args[:-1] + (Constant(f"DELTA_{i}"),))
            for i, fact in enumerate(removed)
        ]
        delta = DatabaseDelta.of(added, removed)
        for store in (database, twin):
            store.apply_delta(delta)
        assert twin.fingerprint() == database.fingerprint()
        assert twin.fingerprint() != before
        for store in (database, twin):
            store.apply_delta(delta.inverse())
        assert database.fingerprint() == before
        assert twin.fingerprint() == before

    def test_duplicate_adds_and_numeric_equality_dedup(self):
        database = SourceDatabase(name="dup", strict=False)
        twin = SourceDatabase(name="dup_sq", strict=False, backend="sqlite")
        for store in (database, twin):
            store.add("R", "a", 1)
            store.add("R", "a", 1)  # exact duplicate
            store.add("R", "a", 1.0)  # Constant(1) == Constant(1.0)
            store.add("R", "a", True)  # distinct from 1
        assert len(database) == len(twin) == 2
        assert database.fingerprint() == twin.fingerprint()


class TestRetrievalParity:
    @pytest.mark.parametrize("domain", sorted(SYSTEM_BUILDERS))
    def test_virtual_abox_identical(self, domain):
        system = SYSTEM_BUILDERS[domain]()
        reference = retrieve_abox(system.specification.mapping, system.database).facts
        for pushdown in (True, False):
            twin = sqlite_twin(system.database, pushdown=pushdown)
            assert twin.supports_pushdown() is pushdown
            retrieved = retrieve_abox(system.specification.mapping, twin).facts
            assert retrieved == reference, f"pushdown={pushdown}"

    @pytest.mark.parametrize("domain", sorted(SYSTEM_BUILDERS))
    def test_borders_identical(self, domain):
        database = SYSTEM_BUILDERS[domain]().database
        twin = sqlite_twin(database)
        anchors = sorted(database.domain(), key=lambda c: str(c.value))[:6]
        for radius in (0, 1, 2):
            for anchor in anchors:
                memory_border = BorderComputer(database).border((anchor,), radius)
                sqlite_border = BorderComputer(twin).border((anchor,), radius)
                assert memory_border.layers == sqlite_border.layers
                assert memory_border == sqlite_border

    def test_pushdown_unsupported_falls_back(self):
        # A CQ whose head is empty (boolean query) has no pushdown
        # translation; assertion application must fall back to the
        # legacy in-memory path rather than fail.
        twin = sqlite_twin(build_university_system().database)
        from repro.queries.parser import parse_cq

        with pytest.raises(PushdownUnsupported):
            twin.execute_pushdown(parse_cq("q() :- ENR(x, y, z)"))


class TestServiceOverSQLite:
    def make_pool(self):
        from repro.experiments.scalability import build_loan_pool

        return build_loan_pool(20, 12, 6)

    def make_service(self, database):
        from repro.ontologies.loans import build_loan_specification
        from repro.obdm.system import OBDMSystem

        system = OBDMSystem(build_loan_specification(), database, name="backend_e2e")
        return ExplanationService(system, radius=0)

    def test_explain_and_delta_identical(self):
        bundle = self.make_pool()
        labeling = bundle.labelings[0]
        memory_service = self.make_service(bundle.database.copy(name="m"))
        sqlite_service = self.make_service(sqlite_twin(bundle.database))
        assert sqlite_service.backend_name == "sqlite"
        assert sqlite_service.size_report()["backend"] == "sqlite"

        def render(service):
            return service.explain(
                labeling, candidates=bundle.pool, top_k=None
            ).render(top_k=None)

        assert render(memory_service) == render(sqlite_service)

        anchor = Constant("APP0000")
        removed = sorted(bundle.database.facts_with_constant(anchor))[:1]
        added = [Atom("RESIDES", (anchor, Constant("Venice")))]
        delta = DatabaseDelta.of(added, removed)
        memory_service.apply_delta(delta)
        sqlite_service.apply_delta(delta)
        assert (
            memory_service.system.database.fingerprint()
            == sqlite_service.system.database.fingerprint()
        )
        assert render(memory_service) == render(sqlite_service)

    def test_snapshot_stamping_over_sqlite(self, tmp_path):
        bundle = self.make_pool()
        labeling = bundle.labelings[0]
        service = self.make_service(sqlite_twin(bundle.database))
        service.explain(labeling, candidates=bundle.pool, top_k=None)
        path = tmp_path / "snapshot.bin"
        service.save(path)

        # A fresh service over equal content loads the snapshot...
        twin_service = self.make_service(sqlite_twin(bundle.database))
        assert twin_service.load(path)
        # ...and one whose database has drifted refuses it.
        drifted = self.make_service(sqlite_twin(bundle.database))
        drifted.apply_delta(
            DatabaseDelta.of([Atom("RESIDES", (Constant("APP0001"), Constant("Venice")))], [])
        )
        with pytest.raises(ValueError):
            drifted.load(path)


class TestAlgebraCompilerCornerCases:
    """SQL-compiled algebra trees vs the in-memory evaluator, errors included.

    The compiler promises *exact* ``SchemaError`` parity: a tree that the
    in-memory :mod:`repro.sql.algebra` rejects must be rejected by the
    SQL path with the identical message, and a tree both accept must
    produce the identical row set.
    """

    def build(self):
        from repro.obdm.schema import SourceSchema

        schema = SourceSchema(name="S")
        schema.declare("ENR", ("student", "subject", "university"))
        schema.declare("LOC", ("university", "city"))
        database = SourceDatabase(schema, name="alg")
        database.add("ENR", "A10", "Math", "TV")
        database.add("ENR", "B80", "Math", "Sap")
        database.add("ENR", "C12", "Science", "Norm")
        database.add("LOC", "Sap", "Rome")
        database.add("LOC", "TV", "Rome")
        catalog = schema.to_catalog()
        for fact in database.facts:
            catalog.insert(fact.predicate, tuple(a.value for a in fact.args))
        return sqlite_twin(database), catalog

    def parity_rows(self, tree):
        database, catalog = self.build()
        pushed = set(database.execute_pushdown(tree))
        legacy = tree.evaluate(catalog).rows
        assert pushed == legacy
        return pushed

    def parity_error(self, tree):
        from repro.errors import SchemaError

        database, catalog = self.build()
        with pytest.raises(SchemaError) as pushed:
            database.execute_pushdown(tree)
        with pytest.raises(SchemaError) as legacy:
            tree.evaluate(catalog)
        assert str(pushed.value) == str(legacy.value)
        return str(pushed.value)

    def test_rename_chain_rows(self):
        from repro.sql.algebra import Condition, Rename, Scan, Select

        tree = Select(
            Rename(
                Rename(Scan("LOC", "l"), ("site", "town")), ("campus", "city")
            ),
            (Condition("city", "Rome"),),
        )
        rows = self.parity_rows(tree)
        assert rows == {("Sap", "Rome"), ("TV", "Rome")}

    def test_rename_arity_mismatch_message_parity(self):
        from repro.sql.algebra import Rename, Scan

        message = self.parity_error(Rename(Scan("LOC", "l"), ("only",)))
        assert message == "rename expects 2 attribute names, got 1"

    def test_union_arity_mismatch_message_parity(self):
        from repro.sql.algebra import Scan, Union

        message = self.parity_error(Union(Scan("ENR", "e"), Scan("LOC", "l")))
        assert message == "union of incompatible arities: 3 vs 2"

    def test_cross_product_duplicate_capture_message_parity(self):
        from repro.sql.algebra import CrossProduct, Scan

        message = self.parity_error(CrossProduct(Scan("LOC", "l"), Scan("LOC", "l")))
        assert message == (
            "cross product would produce duplicate attribute names; "
            "use aliases to disambiguate"
        )

    def test_cross_product_with_aliases_joins(self):
        from repro.sql.algebra import Condition, CrossProduct, Project, Scan, Select

        tree = Project(
            Select(
                CrossProduct(Scan("ENR", "e"), Scan("LOC", "l")),
                (Condition("e.university", "l.university", True, True),),
            ),
            ("e.student", "l.city"),
        )
        rows = self.parity_rows(tree)
        assert rows == {("A10", "Rome"), ("B80", "Rome")}

    def test_unknown_attribute_message_parity(self):
        from repro.sql.algebra import Project, Scan

        message = self.parity_error(Project(Scan("LOC", "l"), ("nope",)))
        assert message == (
            "unknown attribute 'nope' among ['l.university', 'l.city']"
        )

    def test_ambiguous_attribute_message_parity(self):
        from repro.sql.algebra import Condition, CrossProduct, Scan, Select

        tree = Select(
            CrossProduct(Scan("ENR", "e"), Scan("LOC", "l")),
            (Condition("university", "TV"),),
        )
        message = self.parity_error(tree)
        assert message.startswith("ambiguous attribute 'university' among ")
