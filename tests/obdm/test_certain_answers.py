"""Unit and integration tests for certain answers, specifications and systems."""

import pytest

from repro.errors import CertainAnswerError, MappingError
from repro.obdm.certain_answers import CertainAnswerEngine
from repro.obdm.database import SourceDatabase
from repro.obdm.mapping import Mapping
from repro.obdm.schema import SourceSchema
from repro.obdm.specification import OBDMSpecification
from repro.obdm.system import OBDMSystem
from repro.ontologies.university import (
    build_university_database,
    build_university_mapping,
    build_university_ontology,
    build_university_schema,
    build_university_specification,
    build_university_system,
    example_queries,
)
from repro.queries.atoms import Atom
from repro.queries.parser import parse_cq
from repro.queries.terms import Constant


def constants(values):
    return {(Constant(v),) for v in values}


class TestCertainAnswersUniversity:
    """Certain answers on the running example (both strategies)."""

    @pytest.mark.parametrize("strategy", ["rewriting", "chase"])
    def test_q1_answers(self, strategy):
        # Over the FULL database every student studies a subject that is
        # taught *somewhere* in Rome (Math at TV, Science at TV), so q1
        # returns all five students.  This is exactly why the paper's
        # matching (Definition 3.4) restricts evaluation to borders.
        specification = build_university_specification().with_strategy(strategy)
        database = build_university_database()
        answers = specification.certain_answers(example_queries()["q1"], database)
        assert answers == constants(["A10", "B80", "C12", "D50", "E25"])

    @pytest.mark.parametrize("strategy", ["rewriting", "chase"])
    def test_q2_answers(self, strategy):
        specification = build_university_specification().with_strategy(strategy)
        database = build_university_database()
        answers = specification.certain_answers(example_queries()["q2"], database)
        assert answers == constants(["A10", "B80", "E25"])

    @pytest.mark.parametrize("strategy", ["rewriting", "chase"])
    def test_q3_uses_the_ontology_axiom(self, strategy):
        # likes(x, 'Science') has no direct facts; studies ⊑ likes provides them.
        specification = build_university_specification().with_strategy(strategy)
        database = build_university_database()
        answers = specification.certain_answers(example_queries()["q3"], database)
        assert answers == constants(["C12", "D50"])

    def test_strategies_agree_on_all_example_queries(self):
        database = build_university_database()
        rewriting = build_university_specification().with_strategy("rewriting")
        chase = build_university_specification().with_strategy("chase")
        for query in example_queries().values():
            assert rewriting.certain_answers(query, database) == chase.certain_answers(
                query, database
            )

    def test_is_certain_answer_membership(self):
        specification = build_university_specification()
        database = build_university_database()
        q3 = example_queries()["q3"]
        assert specification.is_certain_answer(q3, ("C12",), database)
        assert not specification.is_certain_answer(q3, ("E25",), database)

    def test_certain_answers_monotone_in_database(self):
        specification = build_university_specification()
        database = build_university_database()
        q1 = example_queries()["q1"]
        full = specification.certain_answers(q1, database)
        sub_facts = [f for f in database.facts if f.predicate != "LOC"]
        smaller = specification.certain_answers(q1, database.restrict_to(sub_facts))
        assert smaller <= full


class TestEngineConfiguration:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(CertainAnswerError):
            CertainAnswerEngine(build_university_ontology(), build_university_mapping(), "magic")

    def test_rewrite_cache_reuse(self):
        engine = CertainAnswerEngine(build_university_ontology(), build_university_mapping())
        q = example_queries()["q3"]
        first = engine.rewrite(q)
        second = engine.rewrite(q)
        assert first is second


class TestSpecificationValidation:
    def test_auto_declared_mapping_predicates(self):
        specification = build_university_specification()
        assert specification.ontology.has_predicate("taughtIn")
        assert specification.ontology.has_predicate("locatedIn")

    def test_strict_mode_rejects_unknown_target(self):
        ontology = build_university_ontology()
        schema = build_university_schema()
        mapping = Mapping.from_pairs([("ENR(x, y, z)", "unknownRole(x, y)")])
        with pytest.raises(MappingError):
            OBDMSpecification(ontology, schema, mapping, strict=True)

    def test_arity_clash_rejected(self):
        ontology = build_university_ontology()
        schema = build_university_schema()
        mapping = Mapping.from_pairs([("ENR(x, y, z)", "studies(x)")])
        with pytest.raises(MappingError):
            OBDMSpecification(ontology, schema, mapping)

    def test_ternary_target_rejected(self):
        ontology = build_university_ontology()
        schema = build_university_schema()
        mapping = Mapping.from_pairs([("ENR(x, y, z)", "triple(x, y, z)")])
        with pytest.raises(MappingError):
            OBDMSpecification(ontology, schema, mapping)


class TestOBDMSystem:
    def test_virtual_abox_contents(self, university_system):
        abox = university_system.virtual_abox()
        assert Atom.of("studies", "A10", "Math") in abox
        assert Atom.of("locatedIn", "TV", "Rome") in abox
        # STUD has no mapping assertion, so no concept facts are retrieved.
        assert abox.predicates() == {"studies", "taughtIn", "locatedIn"}

    def test_certain_answers_over_subdatabase(self, university_system):
        q2 = example_queries()["q2"]
        border_facts = [
            Atom.of("STUD", "E25"),
            Atom.of("ENR", "E25", "Math", "Pol"),
            Atom.of("LOC", "Pol", "Milan"),
        ]
        answers = university_system.certain_answers(q2, facts=border_facts)
        assert answers == constants(["E25"])

    def test_is_certain_answer_over_subdatabase(self, university_system):
        q1 = example_queries()["q1"]
        border_facts = [
            Atom.of("ENR", "E25", "Math", "Pol"),
            Atom.of("LOC", "Pol", "Milan"),
        ]
        assert not university_system.is_certain_answer(q1, ("E25",), facts=border_facts)

    def test_domain(self, university_system):
        domain = university_system.domain()
        assert Constant("A10") in domain
        assert Constant("Rome") in domain

    def test_invalidate_refreshes_abox(self):
        system = build_university_system()
        before = len(system.virtual_abox())
        system.database.add("ENR", "F99", "Law", "Sap")
        system.invalidate()
        assert len(system.virtual_abox()) > before
