"""Unit tests for PerfectRef rewriting and the ABox chase."""

import pytest

from repro.dl.ontology import Ontology, domain_of, range_of, subclass, subrole
from repro.dl.parser import parse_ontology
from repro.errors import CertainAnswerError
from repro.obdm.chase import ChaseEngine, is_labelled_null, tuple_has_null
from repro.obdm.rewriting import PerfectRefRewriter
from repro.queries.atoms import Atom
from repro.queries.evaluation import evaluate
from repro.queries.parser import parse_cq, parse_ucq
from repro.queries.terms import Constant


def university_ontology() -> Ontology:
    ontology = Ontology(role_names=("studies", "likes", "taughtIn", "locatedIn"))
    ontology.add_axiom(subrole("studies", "likes"))
    return ontology


def richer_ontology() -> Ontology:
    return parse_ontology(
        """
        studies [= likes
        exists studies [= Student
        exists studies- [= Subject
        Undergraduate [= Student
        Student [= exists enrolledIn
        """,
        role_names=("studies", "likes", "enrolledIn"),
        concept_names=("Student", "Subject", "Undergraduate"),
    )


class TestPerfectRef:
    def test_role_inclusion_rewriting(self):
        rewriter = PerfectRefRewriter(university_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- likes(x, 'Science')"))
        bodies = {tuple(sorted(cq.predicates())) for cq in rewriting}
        assert ("likes",) in bodies
        assert ("studies",) in bodies

    def test_rewriting_answers_equal_certain_answers(self):
        # Evaluating the rewriting over the raw ABox yields the extra answer.
        rewriter = PerfectRefRewriter(university_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- likes(x, 'Science')"))
        abox = [Atom.of("studies", "C12", "Science"), Atom.of("likes", "D50", "Science")]
        answers = rewriting.evaluate(abox)
        assert answers == {(Constant("C12"),), (Constant("D50"),)}

    def test_domain_axiom_rewriting(self):
        rewriter = PerfectRefRewriter(richer_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- Student(x)"))
        abox = [Atom.of("studies", "A10", "Math")]
        assert rewriting.evaluate(abox) == {(Constant("A10"),)}

    def test_range_axiom_rewriting(self):
        rewriter = PerfectRefRewriter(richer_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- Subject(x)"))
        abox = [Atom.of("studies", "A10", "Math")]
        assert rewriting.evaluate(abox) == {(Constant("Math"),)}

    def test_concept_hierarchy_rewriting(self):
        rewriter = PerfectRefRewriter(richer_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- Student(x)"))
        abox = [Atom.of("Undergraduate", "B80")]
        assert rewriting.evaluate(abox) == {(Constant("B80"),)}

    def test_existential_rhs_rewriting_for_unbound_argument(self):
        rewriter = PerfectRefRewriter(richer_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- enrolledIn(x, y)"))
        abox = [Atom.of("Undergraduate", "B80")]
        # Undergraduate ⊑ Student ⊑ exists enrolledIn, and y is unbound.
        assert rewriting.evaluate(abox) == {(Constant("B80"),)}

    def test_bound_argument_blocks_existential_rewriting(self):
        rewriter = PerfectRefRewriter(richer_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x, y) :- enrolledIn(x, y)"))
        abox = [Atom.of("Undergraduate", "B80")]
        # y is an answer variable (bound), so the existential axiom cannot
        # produce an answer for it.
        assert rewriting.evaluate(abox) == set()

    def test_ucq_input(self):
        rewriter = PerfectRefRewriter(university_ontology())
        rewriting = rewriter.rewrite(
            parse_ucq("q(x) :- likes(x, 'Math')\nq(x) :- likes(x, 'Science')")
        )
        assert rewriting.disjunct_count() >= 4

    def test_unknown_predicate_rejected(self):
        rewriter = PerfectRefRewriter(university_ontology())
        with pytest.raises(CertainAnswerError):
            rewriter.rewrite(parse_cq("q(x) :- unknownRole(x, y)"))

    def test_wrong_arity_rejected(self):
        rewriter = PerfectRefRewriter(university_ontology())
        with pytest.raises(CertainAnswerError):
            rewriter.rewrite(parse_cq("q(x) :- studies(x)"))

    def test_rewriting_is_deduplicated(self):
        rewriter = PerfectRefRewriter(university_ontology())
        rewriting = rewriter.rewrite(parse_cq("q(x) :- studies(x, y)"))
        signatures = [cq.signature() for cq in rewriting]
        assert len(signatures) == len(set(signatures))


class TestChase:
    def test_role_inclusion_saturation(self):
        engine = ChaseEngine(university_ontology())
        chased = engine.chase([Atom.of("studies", "C12", "Science")])
        assert Atom.of("likes", "C12", "Science") in chased

    def test_concept_hierarchy_saturation(self):
        engine = ChaseEngine(richer_ontology())
        chased = engine.chase([Atom.of("Undergraduate", "B80")])
        assert Atom.of("Student", "B80") in chased

    def test_domain_range_saturation(self):
        engine = ChaseEngine(richer_ontology())
        chased = engine.chase([Atom.of("studies", "A10", "Math")])
        assert Atom.of("Student", "A10") in chased
        assert Atom.of("Subject", "Math") in chased

    def test_existential_witness_uses_labelled_null(self):
        engine = ChaseEngine(richer_ontology())
        chased = engine.chase([Atom.of("Undergraduate", "B80")])
        enrolments = [fact for fact in chased if fact.predicate == "enrolledIn"]
        assert len(enrolments) == 1
        assert is_labelled_null(enrolments[0].args[1])

    def test_restricted_chase_does_not_duplicate_witnesses(self):
        engine = ChaseEngine(richer_ontology())
        chased = engine.chase(
            [Atom.of("Undergraduate", "B80"), Atom.of("enrolledIn", "B80", "CS101")]
        )
        enrolments = [fact for fact in chased if fact.predicate == "enrolledIn"]
        # B80 already has an enrolledIn filler, so no null witness is added.
        assert enrolments == [Atom.of("enrolledIn", "B80", "CS101")]

    def test_cyclic_ontology_terminates(self):
        cyclic = parse_ontology(
            "Person [= exists hasParent\nexists hasParent- [= Person",
            concept_names=("Person",),
            role_names=("hasParent",),
        )
        engine = ChaseEngine(cyclic, max_depth=3)
        chased = engine.chase([Atom.of("Person", "alice")])
        parents = [fact for fact in chased if fact.predicate == "hasParent"]
        assert 1 <= len(parents) <= 3

    def test_tuple_has_null(self):
        assert tuple_has_null((Constant("_:null0"),))
        assert not tuple_has_null((Constant("Rome"),))

    def test_chase_preserves_original_facts(self):
        engine = ChaseEngine(university_ontology())
        original = [Atom.of("studies", "A10", "Math")]
        chased = engine.chase(original)
        assert set(original) <= set(chased)
