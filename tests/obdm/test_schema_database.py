"""Unit tests for source schemas and S-databases."""

import pytest

from repro.errors import SchemaError, UnknownRelationError
from repro.obdm.database import SourceDatabase
from repro.obdm.schema import RelationSignature, SourceSchema
from repro.queries.atoms import Atom
from repro.queries.terms import Constant
from repro.sql.catalog import Catalog


class TestSourceSchema:
    def test_declare_and_lookup(self):
        schema = SourceSchema(name="S")
        schema.declare("ENR", ("student", "subject", "university"))
        assert schema.arity_of("ENR") == 3
        assert schema.has_relation("ENR")

    def test_declare_arity(self):
        schema = SourceSchema()
        signature = schema.declare_arity("R", 2)
        assert signature.attributes == ("a1", "a2")

    def test_conflicting_declaration_rejected(self):
        schema = SourceSchema()
        schema.declare("R", ("a", "b"))
        with pytest.raises(SchemaError):
            schema.declare("R", ("x", "y", "z"))

    def test_idempotent_redeclaration(self):
        schema = SourceSchema()
        schema.declare("R", ("a", "b"))
        schema.declare("R", ("a", "b"))
        assert len(schema) == 1

    def test_unknown_relation(self):
        with pytest.raises(UnknownRelationError):
            SourceSchema().relation("NOPE")

    def test_catalog_roundtrip(self):
        schema = SourceSchema(name="S")
        schema.declare("LOC", ("university", "city"))
        catalog = schema.to_catalog()
        assert catalog.has_relation("LOC")
        assert SourceSchema.from_catalog(catalog).arity_of("LOC") == 2


class TestSourceDatabase:
    def build(self):
        schema = SourceSchema(name="S")
        schema.declare("STUD", ("student",))
        schema.declare("ENR", ("student", "subject", "university"))
        database = SourceDatabase(schema, name="D")
        database.add("STUD", "A10")
        database.add("ENR", "A10", "Math", "TV")
        database.add("ENR", "B80", "Math", "Sap")
        return database

    def test_add_and_len(self):
        database = self.build()
        assert len(database) == 3
        assert Atom.of("ENR", "A10", "Math", "TV") in database

    def test_duplicate_fact_ignored(self):
        database = self.build()
        database.add("STUD", "A10")
        assert len(database) == 3

    def test_strict_schema_enforced(self):
        database = self.build()
        with pytest.raises(UnknownRelationError):
            database.add("UNKNOWN", "x")
        with pytest.raises(SchemaError):
            database.add("STUD", "A10", "extra")

    def test_non_ground_fact_rejected(self):
        database = self.build()
        with pytest.raises(SchemaError):
            database.add_fact(Atom.of("STUD", "?x"))

    def test_non_strict_autodeclares(self):
        database = SourceDatabase(strict=False)
        database.add("NEW", 1, 2)
        assert database.schema.arity_of("NEW") == 2

    def test_domain(self):
        database = self.build()
        assert Constant("Math") in database.domain()
        assert "Math" in database.domain_values()

    def test_facts_with_constant_index(self):
        database = self.build()
        facts = database.facts_with_constant("A10")
        assert facts == {Atom.of("STUD", "A10"), Atom.of("ENR", "A10", "Math", "TV")}

    def test_facts_with_predicate(self):
        database = self.build()
        assert len(database.facts_with_predicate("ENR")) == 2

    def test_restrict_to(self):
        database = self.build()
        subset = database.restrict_to([Atom.of("STUD", "A10")])
        assert len(subset) == 1

    def test_restrict_to_unknown_fact_rejected(self):
        database = self.build()
        with pytest.raises(SchemaError):
            database.restrict_to([Atom.of("STUD", "Z99")])

    def test_catalog_roundtrip(self):
        database = self.build()
        catalog = database.to_catalog()
        assert catalog.row_count() == 3
        rebuilt = SourceDatabase.from_catalog(catalog)
        assert rebuilt.facts == database.facts

    def test_from_rows(self):
        database = SourceDatabase.from_rows({"LOC": [("Sap", "Rome"), ("Pol", "Milan")]})
        assert len(database) == 2

    def test_copy_is_independent(self):
        database = self.build()
        duplicate = database.copy()
        duplicate.add("STUD", "C12")
        assert len(database) == 3
        assert len(duplicate) == 4


class TestFingerprint:
    """The content fingerprint every derived database must carry consistently."""

    def build(self):
        schema = SourceSchema(name="S")
        schema.declare("STUD", ("student",))
        schema.declare("ENR", ("student", "subject", "university"))
        database = SourceDatabase(schema, name="D")
        database.add("STUD", "A10")
        database.add("ENR", "A10", "Math", "TV")
        database.add("ENR", "B80", "Math", "Sap")
        return database

    def test_same_content_same_fingerprint(self):
        assert self.build().fingerprint() == self.build().fingerprint()

    def test_insertion_order_is_irrelevant(self):
        schema = SourceSchema(name="S")
        schema.declare("R", ("a", "b"))
        forward, backward = SourceDatabase(schema), SourceDatabase(schema)
        rows = [("x", "y"), ("u", "v"), ("p", "q")]
        for row in rows:
            forward.add("R", *row)
        for row in reversed(rows):
            backward.add("R", *row)
        assert forward.fingerprint() == backward.fingerprint()

    def test_add_remove_round_trip_restores(self):
        database = self.build()
        before = database.fingerprint()
        fact = Atom.of("STUD", "Z99")
        database.add_fact(fact)
        assert database.fingerprint() != before
        database.remove_fact(fact)
        assert database.fingerprint() == before

    def test_duplicate_add_does_not_change_fingerprint(self):
        database = self.build()
        before = database.fingerprint()
        database.add("STUD", "A10")
        assert database.fingerprint() == before

    def test_value_types_are_distinguished(self):
        schema = SourceSchema(name="S")
        schema.declare("R", ("a",))
        as_bool, as_int = SourceDatabase(schema), SourceDatabase(schema)
        as_bool.add_fact(Atom("R", (Constant(True),)))
        as_int.add_fact(Atom("R", (Constant(1),)))
        assert as_bool.fingerprint() != as_int.fingerprint()

    def test_copy_restrict_and_catalog_carry_fingerprint(self):
        database = self.build()
        assert database.copy().fingerprint() == database.fingerprint()
        rebuilt = SourceDatabase.from_catalog(database.to_catalog())
        assert rebuilt.fingerprint() == database.fingerprint()
        subset = database.restrict_to(database.facts_with_predicate("ENR"))
        reference = SourceDatabase(database.schema)
        for fact in sorted(database.facts_with_predicate("ENR"), key=str):
            reference.add_fact(fact)
        assert subset.fingerprint() == reference.fingerprint()

    def test_mutating_a_copy_never_aliases_the_original(self):
        database = self.build()
        duplicate = database.copy()
        removed = Atom.of("ENR", "A10", "Math", "TV")
        duplicate.remove_fact(removed)
        duplicate.add("ENR", "C12", "Science", "Norm")
        # The original's fact set and both lookup indexes are untouched.
        assert removed in database.facts
        assert removed in database.facts_with_predicate("ENR")
        assert removed in database.facts_with_constant(Constant("Math"))
        assert not database.facts_with_constant(Constant("C12"))
        assert database.fingerprint() != duplicate.fingerprint()
        # And the copy's indexes reflect only its own mutations.
        assert removed not in duplicate.facts_with_predicate("ENR")
        assert duplicate.facts_with_constant(Constant("C12"))
