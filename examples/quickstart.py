"""Quickstart: the paper's running example, end to end.

Reproduces Examples 3.3, 3.6 and 3.8 of "Ontology-based explanation of
classifiers" through the public API:

1. build the university OBDM system Σ = <J, D>;
2. inspect borders of radius 1 (Definition 3.2);
3. check which borders the candidate queries q1, q2, q3 J-match
   (Definition 3.4);
4. compute their Z-scores under two weightings (Example 3.8);
5. let the explainer search for the best-describing query on its own
   (Definition 3.7).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Labeling, OntologyExplainer, example_3_8_expression
from repro.core import BorderComputer, MatchEvaluator
from repro.ontologies.university import (
    build_university_labeling,
    build_university_system,
    example_queries,
)


def main() -> None:
    system = build_university_system()
    labeling = build_university_labeling()
    print(system)
    print(labeling)
    print()

    # -- borders (Definition 3.2) ------------------------------------------
    borders = BorderComputer(system.database)
    print("Borders of radius 1:")
    for student, _label in labeling:
        border = borders.border(student, 1)
        print(f"  {border}")
    print()

    # -- J-matching (Definition 3.4) ---------------------------------------
    evaluator = MatchEvaluator(system, radius=1)
    queries = example_queries()
    print("J-matching of the paper's candidate queries:")
    for name, query in queries.items():
        profile = evaluator.profile(query, labeling)
        print(
            f"  {name}: matches {profile.true_positives}/{profile.positive_total} positives, "
            f"{profile.false_positives}/{profile.negative_total} negatives   ({query})"
        )
    print()

    # -- Z-scores (Example 3.8) ----------------------------------------------
    explainer = OntologyExplainer(system)
    for weights in ((1, 1, 1), (3, 1, 1)):
        expression = example_3_8_expression(*weights)
        print(f"Z-scores with (alpha, beta, gamma) = {weights}:")
        for name, query in queries.items():
            scored = explainer.score(query, labeling, radius=1, expression=expression)
            print(f"  Z({name}) = {scored.score:.3f}")
        print()

    # -- automatic search (Definition 3.7) -------------------------------------
    print("Automatic search for the best-describing query:")
    report = explainer.explain(labeling, radius=1, top_k=5)
    print(report.render())
    print()

    # -- separability (conditions (1) and (2) of Section 3) ---------------------
    separability = explainer.separability(labeling, radius=1)
    print(f"Perfect CQ separator exists? {separability.separable}  ({separability.detail})")


if __name__ == "__main__":
    main()
