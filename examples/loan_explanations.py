"""Explain a trained loan-approval classifier through the credit ontology.

This is the intended usage pattern of the framework on a realistic
workload:

1. generate a synthetic loan dataset (relational source + numeric view);
2. train a decision tree on the numeric features;
3. turn its predictions into a labelling λ over the applicants;
4. explain λ with queries over the credit ontology and compare the best
   query against the known ground-truth policy of the generator.

Run with:  python examples/loan_explanations.py
"""

from __future__ import annotations

from repro import OBDMSystem, OntologyExplainer, example_3_8_expression
from repro.core.candidates import CandidateConfig
from repro.ml import DecisionTreeClassifier, classification_report
from repro.ontologies.loans import build_loan_specification
from repro.workloads import LoanWorkloadConfig, generate_loan_workload


def main() -> None:
    workload = generate_loan_workload(LoanWorkloadConfig(applicants=80, seed=7))
    dataset = workload.dataset
    print(workload)
    print(f"ground truth policy: {workload.ground_truth}")
    print()

    # -- train the black box --------------------------------------------------
    train, test = dataset.train_test_split(test_fraction=0.25, seed=1)
    classifier = DecisionTreeClassifier(max_depth=4).fit(train.X, train.y)
    report = classification_report(test.y, classifier.predict(test.X))
    print(f"decision tree accuracy on held-out data: {report['accuracy']:.3f}")
    print("tree rules:")
    for rule in classifier.rules(dataset.feature_names):
        print(f"  {rule}")
    print()

    # -- explain its predictions over the whole database -----------------------
    labeling = dataset.predicted_labeling(classifier, name="tree_predictions")
    system = OBDMSystem(build_loan_specification(), workload.database, name="loan")
    explainer = OntologyExplainer(system)
    explanation_report = explainer.explain(
        labeling,
        radius=1,
        expression=example_3_8_expression(alpha=2, beta=2, gamma=1),
        candidate_config=CandidateConfig(max_atoms=2, max_candidates=400),
        top_k=5,
    )
    print(explanation_report.render())
    print()

    best = explanation_report.best
    print("best ontology-level explanation of the classifier:")
    print(f"  {best.query}")
    print(
        f"  covers {best.profile.positive_coverage():.0%} of approvals and excludes "
        f"{best.profile.negative_exclusion():.0%} of rejections"
    )


if __name__ == "__main__":
    main()
