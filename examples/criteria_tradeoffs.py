"""Criteria trade-offs: how the winning explanation changes with Z.

Generalises Example 3.8: the same three candidate queries are scored
under a grid of weightings of Δ = {δ1, δ4, δ5} and under alternative
scoring expressions (product, min, harmonic mean).  The point of the
exercise — and of the paper's framework — is that "the best explanation"
is a function of the criteria the user cares about, not an absolute.

Run with:  python examples/criteria_tradeoffs.py
"""

from __future__ import annotations

from repro import OntologyExplainer
from repro.core import HarmonicMean, MinScore, WeightedProduct, example_3_8_expression
from repro.experiments import run_weight_ablation
from repro.ontologies.university import (
    build_university_labeling,
    build_university_system,
    example_queries,
)


def main() -> None:
    # -- the weight grid of experiment E8a -----------------------------------
    print(run_weight_ablation().render())
    print()

    # -- alternative scoring expressions ----------------------------------------
    system = build_university_system()
    labeling = build_university_labeling()
    explainer = OntologyExplainer(system)
    queries = example_queries()

    expressions = {
        "weighted average (1,1,1)": example_3_8_expression(1, 1, 1),
        "weighted product": WeightedProduct.of({"delta1": 1.0, "delta4": 1.0, "delta5": 1.0}),
        "min (egalitarian)": MinScore(("delta1", "delta4", "delta5")),
        "harmonic mean": HarmonicMean(("delta1", "delta4", "delta5")),
    }
    print("Scores of q1, q2, q3 under alternative expressions Z:")
    header = f"  {'expression':28} " + "  ".join(f"{name:>8}" for name in sorted(queries))
    print(header)
    for label, expression in expressions.items():
        scores = {}
        for name, query in queries.items():
            scored = explainer.score(query, labeling, radius=1, expression=expression)
            scores[name] = scored.score
        row = f"  {label:28} " + "  ".join(f"{scores[name]:8.3f}" for name in sorted(queries))
        winner = max(sorted(scores), key=lambda name: scores[name])
        print(f"{row}   -> winner: {winner}")


if __name__ == "__main__":
    main()
