"""Serving explanations to a fleet of concurrent clients.

Demonstrates `repro.gateway`, the asyncio front end that multiplexes
many tenants and many concurrent clients over warm
`repro.service.ExplanationService` instances:

1. register two tenants (university admissions, loan approvals) with a
   `ServiceRegistry` — services are built lazily, LRU-bounded, and
   shared when their content fingerprints coincide;
2. fire a burst of duplicate concurrent requests and watch them
   coalesce onto one evaluation (every client still gets the full
   report);
3. saturate a tiny gateway and watch it shed deterministically with a
   503-style `GatewayOverloaded` instead of queueing unboundedly;
4. ship the warm replica's snapshot over an asyncio stream so a second
   replica boots warm and ranks identically.

Run with:  PYTHONPATH=src python examples/gateway_serving.py
"""

from __future__ import annotations

import asyncio

from repro.gateway import (
    ExplanationGateway,
    GatewayOverloaded,
    ServiceRegistry,
    SnapshotDonor,
    boot_from_donor,
)
from repro.experiments.kernel_exp import build_probe_system, probe_labeling
from repro.ontologies.university import (
    build_university_labeling,
    build_university_system,
)
from repro.service import ExplanationService


def build_loan_system():
    return build_probe_system("loans")


async def coalesced_burst(gateway: ExplanationGateway) -> None:
    labeling = build_university_labeling()
    reports = await asyncio.gather(
        *(gateway.explain("university", labeling) for _ in range(8))
    )
    assert all(report.render() == reports[0].render() for report in reports)
    stats = gateway.stats
    print("burst of 8 identical concurrent requests:")
    print(f"  evaluations actually run : {stats.requests - stats.coalesced_hits}")
    print(f"  coalesced onto the leader: {stats.coalesced_hits}")
    print(f"  best: {reports[0].best.query}")


async def overloaded_gateway() -> None:
    # A deliberately tiny gateway: one admitted request, zero queue.
    registry = ServiceRegistry()
    registry.register("loans", build_loan_system)
    gateway = ExplanationGateway(registry, max_concurrency=1, max_pending=1)
    labeling = probe_labeling(registry.service("loans").system)
    leader = asyncio.ensure_future(gateway.explain("loans", labeling))
    await asyncio.sleep(0)
    try:
        # A *distinct* request (different options → different key) has
        # nowhere to go: shed fast instead of queueing.
        await gateway.explain("loans", labeling, top_k=3)
        print("unexpectedly admitted")
    except GatewayOverloaded as refused:
        print(f"saturated gateway refused with status {refused.status}: {refused}")
    report = await leader
    print(f"  ...while the admitted leader still completed: {report.best.query}")
    await gateway.aclose()


async def snapshot_shipping() -> None:
    donor = ExplanationService(build_university_system())
    labeling = build_university_labeling()
    donor_report = donor.explain(labeling)

    server = SnapshotDonor(donor)
    host, port = await server.start()
    replica = ExplanationService(build_university_system())
    boot = await boot_from_donor(replica, host, port)
    await server.close()

    print(f"replica boot: warm={boot['warm']} loaded={boot.get('loaded')}")
    replica_report = replica.explain(labeling)
    assert replica_report.render() == donor_report.render()
    print(
        f"  replica verdict-row cache hits: "
        f"{replica.cache_stats.verdict_row_hits}, ranking identical"
    )


async def main() -> None:
    registry = ServiceRegistry(capacity=8)
    registry.register("university", build_university_system)
    registry.register("loans", build_loan_system)
    gateway = ExplanationGateway(registry, max_concurrency=4, max_pending=64)

    await coalesced_burst(gateway)
    print()
    await overloaded_gateway()
    print()
    await snapshot_shipping()
    print()
    print(gateway)
    await gateway.aclose()


if __name__ == "__main__":
    asyncio.run(main())
