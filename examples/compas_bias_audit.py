"""Bias audit on a synthetic recidivism-risk classifier.

The paper motivates ontology-based explanations with the COMPAS case:
without transparency it is hard to see that a risk classifier treats a
demographic group unfairly.  This example reproduces that scenario on a
synthetic domain:

* the *unbiased* run labels defendants by priors/charge severity only;
* the *biased* run injects a dependence on the sensitive group;
* in both runs a decision tree is trained on numeric features and its
  predictions are explained through the ontology.

The interesting output is whether the best-describing query mentions
``belongsToGroup(x, 'B')`` — the ontology-level trace of the bias.

Run with:  python examples/compas_bias_audit.py
"""

from __future__ import annotations

from repro import OBDMSystem, OntologyExplainer, example_3_8_expression
from repro.core.candidates import CandidateConfig
from repro.ml import DecisionTreeClassifier
from repro.ontologies.compas import build_compas_specification
from repro.workloads import CompasWorkloadConfig, generate_compas_workload


def audit(bias_strength: float) -> None:
    workload = generate_compas_workload(
        CompasWorkloadConfig(persons=60, seed=11, bias_strength=bias_strength)
    )
    dataset = workload.dataset
    classifier = DecisionTreeClassifier(max_depth=4).fit(dataset.X, dataset.y)
    labeling = dataset.predicted_labeling(classifier, name=f"risk_bias_{bias_strength}")

    system = OBDMSystem(build_compas_specification(), workload.database, name="compas")
    explainer = OntologyExplainer(system)
    report = explainer.explain(
        labeling,
        radius=1,
        expression=example_3_8_expression(alpha=2, beta=2, gamma=1),
        candidate_config=CandidateConfig(max_atoms=2, max_candidates=300),
        top_k=3,
    )

    print(f"=== bias_strength = {bias_strength} ===")
    print(f"classifier accuracy: {classifier.score(dataset.X, dataset.y):.3f}")
    print(report.render(3))
    best_text = str(report.best.query)
    if "belongsToGroup" in best_text or "'B'" in best_text:
        print(">>> the explanation SURFACES the sensitive attribute — audit flag raised")
    else:
        print(">>> the explanation relies on legitimate attributes only")
    print()


def main() -> None:
    audit(bias_strength=0.0)
    audit(bias_strength=1.0)


if __name__ == "__main__":
    main()
